"""Deterministic fault injection for the serving stack (the chaos harness).

Production serving treats failure as a first-class, continuously-exercised
input: a resilience property that is not exercised by injected faults is a
property the next refactor silently loses. This module is the injection
half of that discipline — a declarative, seedable description of *what*
breaks *when*, wired into the serving stack at four named hook points:

* ``frontend.recv`` — the socket frontend's ingress path (drop a peer's
  connection mid-stream, corrupt its bytes, delay ingestion);
* ``executor.dispatch`` — the process executor's per-shard dispatch (kill
  a worker with SIGKILL, *hang* it with SIGSTOP — alive but unresponsive,
  the failure mode timeouts exist for — or delay the dispatch);
* ``worker.forward`` — inside the shard worker subprocess, before a
  forward executes (hang, die mid-request, or add latency);
* ``registry.load`` — checkpoint blob shipping (corrupt the bytes in
  flight, delay the transfer).

A :class:`FaultPlan` is a tuple of :class:`FaultRule`\\ s plus a seed; a
:class:`FaultInjector` holds the plan's runtime state (per-rule event and
firing counters, a seeded RNG for probabilistic rules) and is consulted by
the serving components that were handed one. **Zero overhead when
disabled**: components hold ``None`` by default and the hook sites are a
single ``is not None`` check — no injector object, no counters, no RNG on
the healthy path.

Rules are deterministic by construction: eligibility is counted per rule
(``after`` skips warmup events, ``every_n`` fires periodically, ``count``
bounds total firings), so the same plan against the same request sequence
injects the same faults. Probabilistic rules (``probability < 1``) draw
from the plan's seeded RNG; they stay reproducible for a single-threaded
event stream and statistically stable for concurrent ones.

Worker subprocesses cannot share the parent's injector state: the
executor passes :meth:`FaultPlan.subset`\\ (``"worker."``) to each spawned
worker, which builds its own injector. Worker-side counters therefore
restart with the process — parent-side hooks (``executor.dispatch``,
``registry.load``) are the ones to use when a fault must fire an exact
total number of times across respawns.
"""
from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from random import Random

#: The named hook points the serving stack consults an injector at.
FAULT_HOOKS = (
    "frontend.recv",
    "executor.dispatch",
    "worker.forward",
    "registry.load",
)

#: Fault kinds. Which kinds are meaningful depends on the hook: ``kill`` /
#: ``hang`` act on a worker process (SIGKILL / SIGSTOP at dispatch,
#: ``os._exit`` / sleep inside the worker), ``drop`` severs a frontend
#: connection, ``corrupt`` flips blob or frame bytes, ``delay`` sleeps.
FAULT_KINDS = ("kill", "hang", "delay", "drop", "corrupt")


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: where, what, and on which events.

    Attributes:
        hook: the hook point this rule listens on (:data:`FAULT_HOOKS`).
        kind: the fault to inject (:data:`FAULT_KINDS`).
        after: skip this many eligible events before the rule may fire
            (lets a system warm up before chaos starts).
        every_n: fire on every Nth eligible event past ``after`` (1 =
            every eligible event).
        count: maximum total firings (``None`` = unlimited — the
            crash-loop regime).
        probability: chance of firing on an otherwise-eligible event
            (drawn from the plan's seeded RNG; 1.0 = deterministic).
        delay_s: sleep duration for ``delay`` rules, and the hang
            duration for worker-side ``hang`` rules (0 = a very long
            hang, left to the watchdog to resolve).
        shard: restrict the rule to one shard index (``None`` = all) for
            the executor/worker hooks.
    """

    hook: str
    kind: str
    after: int = 0
    every_n: int = 1
    count: int | None = 1
    probability: float = 1.0
    delay_s: float = 0.0
    shard: int | None = None

    def __post_init__(self) -> None:
        if self.hook not in FAULT_HOOKS:
            raise ValueError(f"unknown fault hook {self.hook!r}; choose from {FAULT_HOOKS}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.after < 0 or self.every_n < 1:
            raise ValueError("after must be >= 0 and every_n >= 1")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (or None for unlimited)")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")


@dataclass(frozen=True)
class FaultPlan:
    """A chaos schedule: fault rules plus the seed for probabilistic ones."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def subset(self, prefix: str) -> "FaultPlan":
        """The plan restricted to hooks starting with ``prefix``.

        Used to ship only the ``worker.`` rules into worker subprocesses
        (the full plan would be dead weight there, and parent-side state
        does not cross the process boundary anyway).
        """
        return FaultPlan(
            rules=tuple(r for r in self.rules if r.hook.startswith(prefix)),
            seed=self.seed,
        )

    def hooks(self) -> set[str]:
        """The hook points this plan can fire at."""
        return {rule.hook for rule in self.rules}


def corrupt_bytes(data: bytes) -> bytes:
    """Deterministically corrupt ``data``: flip the middle byte.

    One flipped byte is the minimal corruption a content hash must catch —
    exactly what the sealed-blob integrity check exists for.
    """
    if not data:
        return b"\x00"
    k = len(data) // 2
    return data[:k] + bytes([data[k] ^ 0xFF]) + data[k + 1:]


class FaultInjector:
    """Runtime state of one :class:`FaultPlan` (thread-safe).

    Components that were handed an injector call :meth:`fire` at their
    hook points and interpret the returned rule (or apply the shared
    helpers :meth:`filter_blob` / :meth:`maybe_delay`). Every *eligible*
    event advances the matching rules' event counters whether or not a
    rule fires, which is what makes ``after`` / ``every_n`` schedules
    deterministic.
    """

    def __init__(self, plan: FaultPlan, armed: bool = True) -> None:
        self.plan = plan
        #: While disarmed, :meth:`fire` is inert and advances no counters —
        #: a benchmark wires the injector through the whole stack once,
        #: then :meth:`arm`\ s it exactly at its chaos phase so warmup and
        #: baseline traffic cannot eat the rules' ``after`` budgets.
        self.armed = armed
        self._rng = Random(plan.seed)
        self._lock = threading.Lock()
        self._by_hook: dict[str, list[int]] = {}
        for index, rule in enumerate(plan.rules):
            self._by_hook.setdefault(rule.hook, []).append(index)
        self._events = [0] * len(plan.rules)
        self._fired = [0] * len(plan.rules)

    def fire(self, hook: str, shard: int | None = None) -> FaultRule | None:
        """The first rule triggering on this event at ``hook``, or None.

        All matching rules advance their event counters; at most one rule
        fires per event (first in plan order wins). Inert (no counter
        movement) while disarmed.
        """
        if not self.armed:
            return None
        indices = self._by_hook.get(hook)
        if not indices:
            return None
        triggered: FaultRule | None = None
        with self._lock:
            for index in indices:
                rule = self.plan.rules[index]
                if rule.shard is not None and rule.shard != shard:
                    continue
                n = self._events[index]
                self._events[index] = n + 1
                if n < rule.after:
                    continue
                if rule.count is not None and self._fired[index] >= rule.count:
                    continue
                if (n - rule.after) % rule.every_n != 0:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                if triggered is None:
                    self._fired[index] += 1
                    triggered = rule
        return triggered

    def arm(self, armed: bool = True) -> None:
        """Start (or stop) injecting; counters only move while armed."""
        self.armed = armed

    # ------------------------------------------------------------------ #
    # hook-site helpers
    # ------------------------------------------------------------------ #

    def filter_blob(self, hook: str, blob: bytes, shard: int | None = None) -> bytes:
        """Apply any ``corrupt`` / ``delay`` rule at ``hook`` to ``blob``."""
        rule = self.fire(hook, shard=shard)
        if rule is None:
            return blob
        if rule.kind == "delay" and rule.delay_s > 0:
            time.sleep(rule.delay_s)
            return blob
        if rule.kind == "corrupt":
            return corrupt_bytes(blob)
        return blob

    @staticmethod
    def maybe_delay(rule: FaultRule | None) -> bool:
        """Sleep out a ``delay`` rule; True if one was applied."""
        if rule is not None and rule.kind == "delay":
            if rule.delay_s > 0:
                time.sleep(rule.delay_s)
            return True
        return False

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def exhausted(self) -> bool:
        """True once every count-bounded rule has fired its full count
        (the chaos phase of a benchmark is over)."""
        with self._lock:
            return all(
                rule.count is not None and self._fired[i] >= rule.count
                for i, rule in enumerate(self.plan.rules)
            )

    def snapshot(self) -> list[dict]:
        """Per-rule accounting: eligible events seen and faults fired."""
        with self._lock:
            return [
                {
                    "hook": rule.hook,
                    "kind": rule.kind,
                    "shard": rule.shard,
                    "events": self._events[i],
                    "fired": self._fired[i],
                }
                for i, rule in enumerate(self.plan.rules)
            ]


__all__ = [
    "FAULT_HOOKS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "corrupt_bytes",
]
