"""Service-backed evaluator: the existing evaluator interface, served.

``ServiceEvaluator`` speaks the same protocol as
:class:`~repro.autotuner.LearnedEvaluator` (it satisfies both
:class:`~repro.autotuner.TileScorer` and
:class:`~repro.autotuner.ProgramCostModel`), so ``model_tile_autotune``
and ``model_fusion_autotune`` run against the shared service unchanged —
point N tuner threads at one service and their queries coalesce into the
same micro-batches.

Against a service without a worker thread the client pumps the queue
itself (submit, :meth:`CostModelService.flush`, wait) — fully synchronous
and deterministic, which is also how the equivalence tests drive it.
"""
from __future__ import annotations

import numpy as np

from ..compiler.kernels import Kernel
from ..compiler.tiling import TileConfig
from .protocol import (
    KernelRuntimeRequest,
    ProgramRuntimesRequest,
    Request,
    Response,
    TileScoresRequest,
)
from .service import CostModelService


class ServiceEvaluator:
    """Evaluator facade over a :class:`CostModelService`.

    Args:
        service: the service to query (shared across clients).
        timeout_s: max seconds to wait for any one response.

    Attributes:
        last_response: the most recent :class:`Response` (version stamp,
            batch occupancy, latency) — what a client inspects to learn
            which checkpoint priced its query.
    """

    def __init__(self, service: CostModelService, timeout_s: float = 60.0) -> None:
        self.service = service
        self.timeout_s = timeout_s
        self.last_response: Response | None = None

    @property
    def model_version(self) -> str | None:
        """Version that served the most recent request (None before any)."""
        return self.last_response.model_version if self.last_response else None

    def _call(self, request: Request) -> Response:
        future = self.service.submit(request)
        if not self.service.is_running:
            self.service.flush()
        response: Response = future.result(timeout=self.timeout_s)
        self.last_response = response
        return response

    def tile_scores(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Rank scores for candidate tiles of one kernel (lower = faster)."""
        response = self._call(TileScoresRequest(kernel=kernel, tiles=tuple(tiles)))
        return np.asarray(response.unwrap())

    def score_tiles_batched(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Population-level tile scoring entry point (empty-safe)."""
        if not tiles:
            return np.zeros(0, dtype=np.float32)
        return self.tile_scores(kernel, tiles)

    def kernel_runtime(self, kernel: Kernel, tile: TileConfig | None = None) -> float:
        """Predicted absolute runtime in seconds (``tile`` ignored, as in
        :class:`~repro.autotuner.LearnedEvaluator`)."""
        response = self._call(KernelRuntimeRequest(kernel=kernel))
        return float(response.unwrap())

    def program_runtime(self, kernels: list[Kernel]) -> float:
        """Predicted program runtime (one-program population query)."""
        response = self._call(
            ProgramRuntimesRequest(programs=(tuple(kernels),))
        )
        return float(np.asarray(response.unwrap())[0])

    def program_runtimes_batched(self, programs: list[list[Kernel]]) -> np.ndarray:
        """Predicted runtimes for many candidate programs (empty-safe)."""
        if not programs:
            return np.zeros(0, dtype=np.float64)
        response = self._call(
            ProgramRuntimesRequest(programs=tuple(tuple(p) for p in programs))
        )
        return np.asarray(response.unwrap())
