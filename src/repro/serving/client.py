"""Clients: the existing evaluator interface, served over any transport.

Both clients speak the same protocol as
:class:`~repro.autotuner.LearnedEvaluator` (they satisfy
:class:`~repro.autotuner.TileScorer` and
:class:`~repro.autotuner.ProgramCostModel`), so ``model_tile_autotune``
and ``model_fusion_autotune`` run against a shared service unchanged —
point N tuner threads or processes at one service and their queries
coalesce into the same micro-batches.

* :class:`ServiceEvaluator` — the in-process path: submits straight into
  the service's scheduler. Against a service without a worker thread it
  pumps the queue itself (submit, :meth:`CostModelService.flush`, wait) —
  fully synchronous and deterministic, which is also how the equivalence
  tests drive it.
* :class:`SocketEvaluator` — the remote path: the same facade over a TCP
  connection to a :class:`~repro.serving.frontend.SocketFrontend`, so a
  tuner in another process or on another machine shares the same warm
  model. Served values cross the wire as raw dtype-tagged bytes and are
  bitwise-identical to in-process responses at equal batch shape.
"""
from __future__ import annotations

import itertools
import socket

import numpy as np

from ..compiler.kernels import Kernel
from ..compiler.tiling import TileConfig
from .protocol import (
    NEED_KERNEL_PREFIX,
    KernelRuntimeRequest,
    ProgramRuntimesRequest,
    Request,
    Response,
    TileScoresRequest,
    WireError,
    encode_request,
    recv_frame,
    send_frame,
)
from .service import CostModelService


class EvaluatorClient:
    """Shared evaluator facade; transports implement :meth:`_call`.

    Attributes:
        last_response: the most recent :class:`Response` (version stamp,
            rollout tags, batch occupancy, latency) — what a client
            inspects to learn which checkpoint priced its query.
        version_counts: how many of this client's responses each
            checkpoint version served — under a canary rollout this is
            the client-side view of the traffic split (transports fill it
            via :meth:`_record`).
    """

    def __init__(self) -> None:
        self.last_response: Response | None = None
        self.version_counts: dict[str, int] = {}

    def _call(self, request: Request) -> Response:
        raise NotImplementedError

    def _record(self, response: Response) -> Response:
        """Account one response (transports call this from ``_call``)."""
        self.last_response = response
        if response.error is None:
            self.version_counts[response.model_version] = (
                self.version_counts.get(response.model_version, 0) + 1
            )
        return response

    @property
    def model_version(self) -> str | None:
        """Version that served the most recent request (None before any)."""
        return self.last_response.model_version if self.last_response else None

    @property
    def served_by_canary(self) -> bool:
        """True when the most recent response came from a staged version
        under a canary rollout policy."""
        return bool(self.last_response and self.last_response.canary)

    def tile_scores(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Rank scores for candidate tiles of one kernel (lower = faster)."""
        response = self._call(TileScoresRequest(kernel=kernel, tiles=tuple(tiles)))
        return np.asarray(response.unwrap())

    def score_tiles_batched(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Population-level tile scoring entry point (empty-safe)."""
        if not tiles:
            return np.zeros(0, dtype=np.float32)
        return self.tile_scores(kernel, tiles)

    def kernel_runtime(self, kernel: Kernel, tile: TileConfig | None = None) -> float:
        """Predicted absolute runtime in seconds (``tile`` ignored, as in
        :class:`~repro.autotuner.LearnedEvaluator`)."""
        response = self._call(KernelRuntimeRequest(kernel=kernel))
        return float(response.unwrap())

    def program_runtime(self, kernels: list[Kernel]) -> float:
        """Predicted program runtime (one-program population query)."""
        response = self._call(
            ProgramRuntimesRequest(programs=(tuple(kernels),))
        )
        return float(np.asarray(response.unwrap())[0])

    def program_runtimes_batched(self, programs: list[list[Kernel]]) -> np.ndarray:
        """Predicted runtimes for many candidate programs (empty-safe)."""
        if not programs:
            return np.zeros(0, dtype=np.float64)
        response = self._call(
            ProgramRuntimesRequest(programs=tuple(tuple(p) for p in programs))
        )
        return np.asarray(response.unwrap())


class ServiceEvaluator(EvaluatorClient):
    """Evaluator facade over an in-process :class:`CostModelService`.

    Args:
        service: the service to query (shared across clients).
        timeout_s: max seconds to wait for any one response.
    """

    def __init__(self, service: CostModelService, timeout_s: float = 60.0) -> None:
        super().__init__()
        self.service = service
        self.timeout_s = timeout_s

    def _call(self, request: Request) -> Response:
        future = self.service.submit(request)
        if not self.service.is_running:
            self.service.flush()
        response: Response = future.result(timeout=self.timeout_s)
        return self._record(response)


class SocketEvaluator(EvaluatorClient):
    """Evaluator facade over a TCP connection to a socket frontend.

    Args:
        address: ``(host, port)`` of a listening
            :class:`~repro.serving.frontend.SocketFrontend`.
        timeout_s: socket timeout for connect and per-response waits.

    One request is in flight per client at a time (the facade is
    synchronous); concurrency comes from many clients — each tuner
    thread/process owns its own connection, and the frontend funnels them
    all into the shared micro-batcher. Use as a context manager, or call
    :meth:`close`.

    Each kernel's graph is shipped once per connection; afterwards the
    client sends fingerprint-only references, and a server that evicted a
    kernel answers ``need_kernel`` to trigger a full resend — repeat
    queries for a warm kernel set pay almost no serialization.
    """

    def __init__(self, address: tuple[str, int], timeout_s: float = 60.0) -> None:
        super().__init__()
        self.address = (address[0], int(address[1]))
        self.timeout_s = timeout_s
        self._ids = itertools.count(1)
        self._known: set[str] = set()
        self._sock = socket.create_connection(self.address, timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def _roundtrip(self, body: bytes) -> Response:
        request_id = next(self._ids)
        send_frame(self._sock, request_id, body)
        while True:
            frame = recv_frame(self._sock)
            if frame is None:
                raise WireError("server closed the connection mid-request")
            reply_id, reply_body = frame
            if reply_id != request_id:
                continue  # stale reply from an abandoned request
            return Response.from_bytes(reply_body)

    def _call(self, request: Request) -> Response:
        response = self._roundtrip(encode_request(request, known=self._known))
        if response.error is not None and response.error.startswith(
            NEED_KERNEL_PREFIX
        ):
            # The server evicted a referenced kernel: resend in full.
            self._known.difference_update(request.fingerprints())
            response = self._roundtrip(encode_request(request, known=None))
        if response.error is None:
            self._known.update(request.fingerprints())
        return self._record(response)

    def close(self) -> None:
        """Close the connection; idempotent."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SocketEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
