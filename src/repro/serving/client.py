"""Clients: the existing evaluator interface, served over any transport.

Both clients speak the same protocol as
:class:`~repro.autotuner.LearnedEvaluator` (they satisfy
:class:`~repro.autotuner.TileScorer` and
:class:`~repro.autotuner.ProgramCostModel`), so ``model_tile_autotune``
and ``model_fusion_autotune`` run against a shared service unchanged —
point N tuner threads or processes at one service and their queries
coalesce into the same micro-batches.

* :class:`ServiceEvaluator` — the in-process path: submits straight into
  the service's scheduler. Against a service without a worker thread it
  pumps the queue itself (submit, :meth:`CostModelService.flush`, wait) —
  fully synchronous and deterministic, which is also how the equivalence
  tests drive it.
* :class:`SocketEvaluator` — the remote path: the same facade over a TCP
  connection to a :class:`~repro.serving.frontend.SocketFrontend`, so a
  tuner in another process or on another machine shares the same warm
  model. Served values cross the wire as raw dtype-tagged bytes and are
  bitwise-identical to in-process responses at equal batch shape.
"""
from __future__ import annotations

import dataclasses
import itertools
import socket
import time
from concurrent import futures as _futures

import numpy as np

from ..compiler.kernels import Kernel
from ..compiler.tiling import TileConfig
from .protocol import (
    NEED_KERNEL_PREFIX,
    KernelRuntimeRequest,
    ProgramRuntimesRequest,
    Request,
    Response,
    TileScoresRequest,
    WireError,
    encode_request,
    recv_frame,
    send_frame,
)
from .resilience import (
    ConnectionLost,
    DeadlineExceeded,
    RetryPolicy,
    ServingFault,
    fault_for,
    idempotency_key,
)
from .service import CostModelService


class EvaluatorClient:
    """Shared evaluator facade; transports implement :meth:`_call_once`.

    The shared :meth:`_call` wraps every transport round trip in the
    resilience envelope: it stamps the client's default deadline on
    requests that carry none, converts typed error responses into typed
    :class:`~.resilience.ServingFault` exceptions, and — when a
    :class:`~.resilience.RetryPolicy` is configured — retries retryable
    faults with exponential backoff and deterministic jitter keyed by the
    request's idempotency key (a retry is *the same request*: equal
    content, equal cache key, so a replay is answer-idempotent).

    Args:
        deadline_s: default per-request deadline stamped on submissions
            that carry none (None = no deadline, the pre-resilience
            behavior).
        retry: retry schedule for typed transient faults (None = fail on
            the first fault, the pre-resilience behavior).

    Attributes:
        last_response: the most recent :class:`Response` (version stamp,
            rollout tags, batch occupancy, latency) — what a client
            inspects to learn which checkpoint priced its query.
        version_counts: how many of this client's responses each
            checkpoint version served — under a canary rollout this is
            the client-side view of the traffic split (transports fill it
            via :meth:`_record`).
        retries: transport round trips beyond each request's first try.
        degraded_responses: answers served by the analytical fallback
            (tagged ``degraded=True`` by the service).
    """

    def __init__(
        self,
        deadline_s: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.last_response: Response | None = None
        self.version_counts: dict[str, int] = {}
        self.deadline_s = deadline_s
        self.retry = retry
        self.retries = 0
        self.degraded_responses = 0

    def _call_once(self, request: Request) -> Response:
        """One transport round trip (implemented by transports). Raises
        a typed :class:`~.resilience.ServingFault` on transport-level
        failure; returns the response otherwise (which may itself carry
        a typed ``error_code``)."""
        raise NotImplementedError

    def _stamp(self, request: Request) -> Request:
        """Apply the client's default deadline to an unstamped request."""
        if self.deadline_s is None:
            return request
        if getattr(request, "deadline_s", None) is not None:
            return request
        try:
            return dataclasses.replace(request, deadline_s=self.deadline_s)
        except TypeError:
            return request  # foreign request-like object: pass through

    def _call(self, request: Request) -> Response:
        request = self._stamp(request)
        policy = self.retry
        attempts = policy.max_attempts if policy is not None else 1
        key = idempotency_key(request) if policy is not None else ""
        fault: ServingFault | None = None
        for attempt in range(attempts):
            if attempt:
                self.retries += 1
                time.sleep(policy.backoff_s(attempt - 1, key))
            try:
                response = self._call_once(request)
            except ServingFault as exc:
                fault = exc
                if policy is not None and policy.retryable(exc.code):
                    continue
                raise
            fault = fault_for(response)
            if fault is not None:
                if policy is not None and policy.retryable(response.error_code):
                    continue
                raise fault
            if response.degraded:
                self.degraded_responses += 1
            return self._record(response)
        assert fault is not None
        raise fault

    def _record(self, response: Response) -> Response:
        """Account one response (transports call this from ``_call``)."""
        self.last_response = response
        if response.error is None:
            self.version_counts[response.model_version] = (
                self.version_counts.get(response.model_version, 0) + 1
            )
        return response

    @property
    def model_version(self) -> str | None:
        """Version that served the most recent request (None before any)."""
        return self.last_response.model_version if self.last_response else None

    @property
    def served_by_canary(self) -> bool:
        """True when the most recent response came from a staged version
        under a canary rollout policy."""
        return bool(self.last_response and self.last_response.canary)

    def tile_scores(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Rank scores for candidate tiles of one kernel (lower = faster)."""
        response = self._call(TileScoresRequest(kernel=kernel, tiles=tuple(tiles)))
        return np.asarray(response.unwrap())

    def score_tiles_batched(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Population-level tile scoring entry point (empty-safe)."""
        if not tiles:
            return np.zeros(0, dtype=np.float32)
        return self.tile_scores(kernel, tiles)

    def kernel_runtime(self, kernel: Kernel, tile: TileConfig | None = None) -> float:
        """Predicted absolute runtime in seconds (``tile`` ignored, as in
        :class:`~repro.autotuner.LearnedEvaluator`)."""
        response = self._call(KernelRuntimeRequest(kernel=kernel))
        return float(response.unwrap())

    def program_runtime(self, kernels: list[Kernel]) -> float:
        """Predicted program runtime (one-program population query)."""
        response = self._call(
            ProgramRuntimesRequest(programs=(tuple(kernels),))
        )
        return float(np.asarray(response.unwrap())[0])

    def program_runtimes_batched(self, programs: list[list[Kernel]]) -> np.ndarray:
        """Predicted runtimes for many candidate programs (empty-safe)."""
        if not programs:
            return np.zeros(0, dtype=np.float64)
        response = self._call(
            ProgramRuntimesRequest(programs=tuple(tuple(p) for p in programs))
        )
        return np.asarray(response.unwrap())


class ServiceEvaluator(EvaluatorClient):
    """Evaluator facade over an in-process :class:`CostModelService`.

    Args:
        service: the service to query (shared across clients).
        timeout_s: max seconds to wait for any one response.
        deadline_s: default per-request deadline (see
            :class:`EvaluatorClient`).
        retry: retry schedule for typed transient faults. The service
            raises :class:`~.resilience.Overloaded` at submission when
            admission control sheds — with a policy, the client backs
            off and resubmits.
    """

    def __init__(
        self,
        service: CostModelService,
        timeout_s: float = 60.0,
        deadline_s: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__(deadline_s=deadline_s, retry=retry)
        self.service = service
        self.timeout_s = timeout_s

    def _call_once(self, request: Request) -> Response:
        future = self.service.submit(request)  # may raise Overloaded
        if not self.service.is_running:
            self.service.flush()
        try:
            return future.result(timeout=self.timeout_s)
        except _futures.TimeoutError:
            raise DeadlineExceeded(
                f"no response within timeout_s={self.timeout_s}"
            ) from None


class SocketEvaluator(EvaluatorClient):
    """Evaluator facade over a TCP connection to a socket frontend.

    Args:
        address: ``(host, port)`` of a listening
            :class:`~repro.serving.frontend.SocketFrontend`.
        timeout_s: socket timeout for connect and per-response waits.
        deadline_s: default per-request deadline (see
            :class:`EvaluatorClient`).
        retry: retry schedule for typed transient faults. A broken or
            reset connection surfaces as a retryable
            :class:`~.resilience.ConnectionLost`; the next attempt
            reconnects (with a fresh kernel-interning set — the server's
            per-connection interner died with the old connection).

    One request is in flight per client at a time (the facade is
    synchronous); concurrency comes from many clients — each tuner
    thread/process owns its own connection, and the frontend funnels them
    all into the shared micro-batcher. Use as a context manager, or call
    :meth:`close`.

    Each kernel's graph is shipped once per connection; afterwards the
    client sends fingerprint-only references, and a server that evicted a
    kernel answers ``need_kernel`` to trigger a full resend — repeat
    queries for a warm kernel set pay almost no serialization.
    """

    def __init__(
        self,
        address: tuple[str, int],
        timeout_s: float = 60.0,
        deadline_s: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__(deadline_s=deadline_s, retry=retry)
        self.address = (address[0], int(address[1]))
        self.timeout_s = timeout_s
        self._ids = itertools.count(1)
        self._known: set[str] = set()
        self._sock: socket.socket | None = None
        self.reconnects = 0
        self._connect()

    def _connect(self) -> None:
        """(Re)establish the connection; resets the interning contract."""
        if self._sock is not None:
            return
        self._known.clear()
        try:
            sock = socket.create_connection(self.address, timeout=self.timeout_s)
        except OSError as exc:
            raise ConnectionLost(
                f"cannot connect to {self.address[0]}:{self.address[1]}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._known.clear()

    def _roundtrip(self, body: bytes) -> Response:
        request_id = next(self._ids)
        try:
            send_frame(self._sock, request_id, body)
            while True:
                frame = recv_frame(self._sock)
                if frame is None:
                    raise WireError("server closed the connection mid-request")
                reply_id, reply_body = frame
                if reply_id != request_id:
                    continue  # stale reply from an abandoned request
                return Response.from_bytes(reply_body)
        except socket.timeout as exc:
            # The connection may still carry the stale reply; it cannot
            # be reused for the next request id.
            self._disconnect()
            raise DeadlineExceeded(
                f"no response within timeout_s={self.timeout_s}"
            ) from exc
        except (WireError, OSError) as exc:
            self._disconnect()
            raise ConnectionLost(str(exc)) from exc

    def _call_once(self, request: Request) -> Response:
        if self._sock is None:
            self.reconnects += 1
            self._connect()
        response = self._roundtrip(encode_request(request, known=self._known))
        if response.error is not None and response.error.startswith(
            NEED_KERNEL_PREFIX
        ):
            # The server evicted a referenced kernel: resend in full.
            self._known.difference_update(request.fingerprints())
            response = self._roundtrip(encode_request(request, known=None))
        if response.error is None:
            self._known.update(request.fingerprints())
        return response

    def close(self) -> None:
        """Close the connection; idempotent."""
        self._disconnect()

    def __enter__(self) -> "SocketEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
