"""Typed request/response protocol for the cost-model service.

The paper's deployment mode is a model trained offline and queried at
compile time; the service speaks exactly the three query shapes that
compile-time clients (tile autotuners, fusion tuners, benchmark drivers)
issue:

* :class:`TileScoresRequest` — rank candidate tiles of one kernel;
* :class:`KernelRuntimeRequest` — predict one kernel's absolute runtime;
* :class:`ProgramRuntimesRequest` — price a population of candidate
  programs (fusion-search populations).

Requests are plain frozen dataclasses so they can cross a transport
boundary (the in-process frontend passes them by reference; the socket
frontend ships them as bytes). Every request exposes a ``shard_key`` (the
kernel fingerprint used to route it to an executor shard) and, when the
result is safely memoizable, a ``cache_key`` for the service's shared
result cache.

Wire form: every message has ``to_bytes``/``from_bytes``, following the
``models/serialize`` convention of a JSON header plus raw binary array
payload — requests are structural (kernels serialize through
:meth:`Kernel.to_dict`), responses carry their score arrays as raw
dtype-tagged bytes so a served value is **bitwise identical** on both
sides of a socket. :func:`encode_request` / :func:`decode_request`
dispatch on a type tag; :func:`send_frame` / :func:`recv_frame` are the
shared length-prefixed framing both ends of the TCP transport speak.
"""
from __future__ import annotations

import json
import struct
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..compiler.kernels import Kernel
from ..compiler.tiling import TileConfig
from .telemetry import TraceContext


class WireError(ValueError):
    """Malformed wire bytes: bad frame, unknown type tag, or truncation."""


class UnknownKernelError(WireError):
    """A fingerprint-only kernel reference missed the receiver's interner.

    The transport answers with a ``need_kernel`` response and the client
    retries with the kernel attached — the same miss/retry contract the
    process executor uses over pipes.
    """

    def __init__(self, fingerprint: str) -> None:
        super().__init__(f"unknown kernel {fingerprint!r}")
        self.fingerprint = fingerprint


#: Error-string prefix of a response that means "resend with full
#: kernels" (a transport-level retry hint, not a client-visible failure).
NEED_KERNEL_PREFIX = "need_kernel:"


# ---------------------------------------------------------------------- #
# typed error codes: the wire vocabulary of serving faults. The strings
# live here (not in resilience.py) so the protocol layer stays dependency
# -free; resilience.py maps them to typed exceptions.
# ---------------------------------------------------------------------- #

#: The request's deadline elapsed before it could be answered.
ERROR_DEADLINE_EXCEEDED = "deadline_exceeded"
#: Admission control shed the request (scheduler backlog at its bound).
ERROR_OVERLOADED = "overloaded"
#: The transport connection died while the request was in flight.
ERROR_DISCONNECTED = "disconnected"
#: Shard-worker infrastructure failed the request (died/hung/unreachable).
ERROR_WORKER_FAILURE = "worker_failure"
#: The service cannot take or answer requests right now.
ERROR_UNAVAILABLE = "unavailable"


#: Frame header: request id (correlates responses on a pipelined
#: connection) + body length.
_FRAME = struct.Struct(">QI")

#: Upper bound on one frame's body — a decoding guard against garbage
#: lengths from a corrupted stream, far above any real message.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Default bound on a receiver's fingerprint -> kernel interning map.
MAX_INTERNED_KERNELS = 4096


def _kernel_to_wire(kernel: Kernel, known) -> dict:
    """Kernel wire entry: full graph, or a fingerprint-only reference.

    ``known`` is the sender's record of fingerprints the receiver has
    already interned (``None`` = always send full). Steady-state traffic
    for a warm kernel set is fingerprint-only — the dominant serialization
    cost (the graph) is paid once per kernel per connection.
    """
    fingerprint = kernel.fingerprint()
    if known is not None and fingerprint in known:
        return {"fingerprint": fingerprint}
    return {"fingerprint": fingerprint, **kernel.to_dict()}


def _kernel_from_wire(entry: dict, interner, max_interned: int) -> Kernel:
    """Resolve a wire entry against ``interner`` (fingerprint -> Kernel).

    Full entries are integrity-checked (declared fingerprint must match
    the rebuilt kernel's) and interned; reference entries must hit the
    interner or raise :class:`UnknownKernelError` for the miss/retry path.
    """
    fingerprint = entry["fingerprint"]
    if "graph" not in entry:
        if interner is None or fingerprint not in interner:
            raise UnknownKernelError(fingerprint)
        interner.move_to_end(fingerprint)
        return interner[fingerprint]
    kernel = Kernel.from_dict(entry)
    if kernel.fingerprint() != fingerprint:
        raise WireError(
            f"kernel fingerprint mismatch: declared {fingerprint!r}, "
            f"rebuilt {kernel.fingerprint()!r}"
        )
    if interner is not None:
        lru_touch(interner, fingerprint, kernel, max_interned)
    return kernel


def kernel_interner() -> "OrderedDict[str, Kernel]":
    """A fresh fingerprint -> kernel LRU map for one receiving peer."""
    return OrderedDict()


def _trace_field(trace: TraceContext | None) -> dict:
    """The optional wire form of a trace context.

    Untraced requests add no bytes at all; traced ones carry a small JSON
    entry old peers never look at — the same optional-field discipline as
    ``deadline_s`` and the rollout tags.
    """
    return {"trace": trace.to_wire()} if trace is not None else {}


def _synthetic_field(synthetic: bool) -> dict:
    """The optional wire form of the prober's ``synthetic=True`` tag.

    Real traffic adds no bytes; probe requests carry one JSON entry old
    peers never look at — the same optional-field discipline as
    ``deadline_s`` and ``trace``.
    """
    return {"synthetic": True} if synthetic else {}


def lru_touch(mapping: OrderedDict, key, value, max_entries: int) -> None:
    """Insert/refresh ``key`` in a bounded LRU ``OrderedDict``.

    The one definition of the interning eviction semantics — shared by
    the wire decoder, the shard workers, and the executor's parent-side
    known-fingerprint maps, so they cannot drift.
    """
    mapping[key] = value
    mapping.move_to_end(key)
    while len(mapping) > max_entries:
        mapping.popitem(last=False)


@dataclass(frozen=True)
class TileScoresRequest:
    """Score candidate tiles of one kernel (lower score = faster).

    Attributes:
        kernel: the kernel being tuned.
        tiles: candidate tile configurations to rank.
        deadline_s: seconds (from submission) this request is worth
            answering; the scheduler sheds it with a typed
            ``deadline_exceeded`` once expired. ``None`` = no deadline.
            Deliberately excluded from :meth:`cache_key` — a cached value
            answers the same query content regardless of its deadline.
        trace: sampled tracing context, or ``None`` (the overwhelmingly
            common case). Like ``deadline_s``, excluded from
            :meth:`cache_key`: a trace annotates a submission, it never
            changes the answer.
        synthetic: the request is a prober probe, not business traffic.
            The scheduler coalesces it normally, but the service excludes
            it from business stats, the SLO window, feedback joins, and
            the result cache, and stamps the tag back on the response.
            Excluded from :meth:`cache_key` for the same reason as
            ``trace`` — it annotates, never changes, the answer.
    """

    kernel: Kernel
    tiles: tuple[TileConfig, ...]
    deadline_s: float | None = None
    trace: TraceContext | None = None
    synthetic: bool = False

    def shard_key(self) -> str:
        return self.kernel.fingerprint()

    def cache_key(self) -> tuple:
        return ("tiles", self.kernel.fingerprint(), tuple(t.dims for t in self.tiles))

    def fingerprints(self) -> list[str]:
        return [self.kernel.fingerprint()]

    def to_bytes(self, known=None) -> bytes:
        return _pack_request(
            "tile_scores",
            kernel=_kernel_to_wire(self.kernel, known),
            tiles=[list(t.dims) for t in self.tiles],
            deadline_s=self.deadline_s,
            **_trace_field(self.trace),
            **_synthetic_field(self.synthetic),
        )

    @classmethod
    def _from_payload(cls, payload, interner, max_interned) -> "TileScoresRequest":
        return cls(
            kernel=_kernel_from_wire(payload["kernel"], interner, max_interned),
            tiles=tuple(TileConfig(dims=tuple(d)) for d in payload["tiles"]),
            # .get(): frames from a pre-deadline/pre-tracing peer still
            # decode.
            deadline_s=payload.get("deadline_s"),
            trace=TraceContext.from_wire(payload.get("trace")),
            synthetic=bool(payload.get("synthetic", False)),
        )


@dataclass(frozen=True)
class KernelRuntimeRequest:
    """Predict one kernel's absolute runtime in seconds."""

    kernel: Kernel
    deadline_s: float | None = None
    trace: TraceContext | None = None
    synthetic: bool = False

    def shard_key(self) -> str:
        return self.kernel.fingerprint()

    def cache_key(self) -> tuple:
        return ("kernel", self.kernel.fingerprint())

    def fingerprints(self) -> list[str]:
        return [self.kernel.fingerprint()]

    def to_bytes(self, known=None) -> bytes:
        return _pack_request(
            "kernel_runtime",
            kernel=_kernel_to_wire(self.kernel, known),
            deadline_s=self.deadline_s,
            **_trace_field(self.trace),
            **_synthetic_field(self.synthetic),
        )

    @classmethod
    def _from_payload(cls, payload, interner, max_interned) -> "KernelRuntimeRequest":
        return cls(
            kernel=_kernel_from_wire(payload["kernel"], interner, max_interned),
            deadline_s=payload.get("deadline_s"),
            trace=TraceContext.from_wire(payload.get("trace")),
            synthetic=bool(payload.get("synthetic", False)),
        )


@dataclass(frozen=True)
class ProgramRuntimesRequest:
    """Predict total runtimes for many candidate programs at once.

    Attributes:
        programs: one tuple of kernels per candidate program (a fusion
            configuration applied to a graph yields such a kernel list).
    """

    programs: tuple[tuple[Kernel, ...], ...]
    deadline_s: float | None = None
    trace: TraceContext | None = None
    synthetic: bool = False

    def shard_key(self) -> str:
        # Route whole populations by their first kernel so one replica's
        # prediction memo sees all configurations of one search.
        for kernels in self.programs:
            if kernels:
                return kernels[0].fingerprint()
        return ""

    def cache_key(self) -> None:
        # Populations are open-ended and rarely repeat exactly; per-kernel
        # memoization inside the replica already captures the reuse.
        return None

    def fingerprints(self) -> list[str]:
        return [k.fingerprint() for kernels in self.programs for k in kernels]

    def to_bytes(self, known=None) -> bytes:
        return _pack_request(
            "program_runtimes",
            programs=[
                [_kernel_to_wire(k, known) for k in kernels]
                for kernels in self.programs
            ],
            deadline_s=self.deadline_s,
            **_trace_field(self.trace),
            **_synthetic_field(self.synthetic),
        )

    @classmethod
    def _from_payload(cls, payload, interner, max_interned) -> "ProgramRuntimesRequest":
        return cls(
            programs=tuple(
                tuple(
                    _kernel_from_wire(k, interner, max_interned) for k in kernels
                )
                for kernels in payload["programs"]
            ),
            deadline_s=payload.get("deadline_s"),
            trace=TraceContext.from_wire(payload.get("trace")),
            synthetic=bool(payload.get("synthetic", False)),
        )


Request = TileScoresRequest | KernelRuntimeRequest | ProgramRuntimesRequest

_REQUEST_TYPES = {
    "tile_scores": TileScoresRequest,
    "kernel_runtime": KernelRuntimeRequest,
    "program_runtimes": ProgramRuntimesRequest,
}


def _pack_request(tag: str, **fields) -> bytes:
    return json.dumps({"type": tag, **fields}).encode()


def encode_request(request: Request, known=None) -> bytes:
    """Serialize any request to its wire bytes.

    ``known`` (a set of fingerprints the receiver has interned) turns
    repeat kernels into fingerprint-only references — see
    :func:`_kernel_to_wire`.
    """
    try:
        to_bytes = request.to_bytes
    except AttributeError:
        raise WireError(
            f"not a wire-serializable request: {type(request).__name__}"
        ) from None
    return to_bytes(known=known)


def decode_request(
    data: bytes,
    interner=None,
    max_interned: int = MAX_INTERNED_KERNELS,
) -> Request:
    """Rebuild a request from :func:`encode_request` bytes.

    ``interner`` is the receiving peer's fingerprint -> kernel LRU map
    (one per connection; see :func:`kernel_interner`): full kernels are
    interned into it, fingerprint-only references resolved from it.

    Raises:
        UnknownKernelError: a reference missed the interner (the caller
            should answer ``need_kernel`` so the sender retries in full).
        WireError: on undecodable bytes or an unknown type tag.
    """
    try:
        payload = json.loads(data.decode())
        cls = _REQUEST_TYPES[payload["type"]]
        return cls._from_payload(payload, interner, max_interned)
    except WireError:
        raise
    except Exception as exc:
        raise WireError(f"undecodable request: {exc}") from exc


@dataclass
class Response:
    """Result of one request.

    Attributes:
        value: ``np.ndarray`` of scores/runtimes (tile and program
            requests) or a float (kernel-runtime requests).
        model_version: registry version of the checkpoint that produced
            ``value`` — one version per response, always (hot swaps apply
            between batches, never inside one). Under a canary rollout
            this is the *routed* version, staged or active.
        batch_size: number of coalesced requests in the executed
            micro-batch ('1' for cache hits), for occupancy accounting.
        cache_hit: served from the shared result cache without a forward.
        latency_s: submit-to-resolution wall time.
        error: traceback string when the request failed; ``value`` is None.
        canary: served by a staged version under a canary rollout policy
            (``model_version`` then names the staged checkpoint).
        shadowed_by: staged version that additionally scored this request
            off the response path (shadow rollout), or ``None``. The
            shadow score never appears in ``value``.
        error_code: stable machine-readable code (one of the ``ERROR_*``
            constants) when the request failed in a typed way; clients
            map it back to a typed exception. ``None`` for successes and
            untyped (traceback-only) failures.
        degraded: ``value`` came from the analytical fallback model, not
            a published checkpoint (``model_version`` is then the
            analytical stamp). Honest but lower-fidelity — clients may
            treat it differently (e.g. skip feedback collection).
        trace_id: id of the sampled trace this request was recorded
            under, or ``None`` (unsampled / tracing off). Lets a client
            fetch its own trace tree from the ops gateway.
        synthetic: this response answers a prober probe — the service
            stamped the request's ``synthetic=True`` tag back on, and
            excluded the exchange from business stats, the SLO window,
            feedback joins, and the result cache.
    """

    value: np.ndarray | float | None
    model_version: str
    batch_size: int = 1
    cache_hit: bool = False
    latency_s: float = 0.0
    error: str | None = None
    canary: bool = False
    shadowed_by: str | None = None
    error_code: str | None = None
    degraded: bool = False
    trace_id: str | None = None
    synthetic: bool = False

    def unwrap(self) -> np.ndarray | float:
        """The value, raising ``RuntimeError`` if the request failed."""
        if self.error is not None:
            raise RuntimeError(f"cost-model request failed: {self.error}")
        assert self.value is not None
        return self.value

    def to_bytes(self) -> bytes:
        """Wire form: JSON header + raw array payload (bitwise-exact).

        The value crosses as its own buffer bytes with a dtype/shape tag,
        never through a decimal text round-trip — what makes socket-served
        scores byte-identical to in-process ones.
        """
        if self.value is None:
            kind, dtype, shape, payload = "none", None, None, b""
        elif isinstance(self.value, np.ndarray):
            arr = np.ascontiguousarray(self.value)
            kind, dtype, shape = "array", arr.dtype.str, list(arr.shape)
            payload = arr.tobytes()
        else:
            kind, dtype, shape = "scalar", "<f8", None
            payload = struct.pack("<d", float(self.value))
        header = json.dumps(
            {
                "kind": kind,
                "dtype": dtype,
                "shape": shape,
                "model_version": self.model_version,
                "batch_size": self.batch_size,
                "cache_hit": self.cache_hit,
                "latency_s": self.latency_s,
                "error": self.error,
                "canary": self.canary,
                "shadowed_by": self.shadowed_by,
                "error_code": self.error_code,
                "degraded": self.degraded,
                "trace_id": self.trace_id,
                # Optional-field discipline: business responses carry no
                # prober bytes at all, so their wire form is byte-identical
                # to the pre-prober stack.
                **_synthetic_field(self.synthetic),
            }
        ).encode()
        return struct.pack(">I", len(header)) + header + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "Response":
        """Rebuild a response from :meth:`to_bytes` bytes."""
        try:
            (header_len,) = struct.unpack_from(">I", data, 0)
            header = json.loads(data[4:4 + header_len].decode())
            payload = data[4 + header_len:]
            kind = header["kind"]
            if kind == "none":
                value = None
            elif kind == "scalar":
                value = float(struct.unpack("<d", payload)[0])
            elif kind == "array":
                value = np.frombuffer(payload, dtype=np.dtype(header["dtype"]))
                value = value.reshape(header["shape"])
            else:
                raise WireError(f"unknown value kind {kind!r}")
            return cls(
                value=value,
                model_version=header["model_version"],
                batch_size=header["batch_size"],
                cache_hit=header["cache_hit"],
                latency_s=header["latency_s"],
                error=header["error"],
                # .get(): rollout/resilience tags are optional on the
                # wire, so frames from an older peer still decode.
                canary=bool(header.get("canary", False)),
                shadowed_by=header.get("shadowed_by"),
                error_code=header.get("error_code"),
                degraded=bool(header.get("degraded", False)),
                trace_id=header.get("trace_id"),
                synthetic=bool(header.get("synthetic", False)),
            )
        except WireError:
            raise
        except Exception as exc:
            raise WireError(f"undecodable response: {exc}") from exc


# ---------------------------------------------------------------------- #
# framing: the length-prefixed envelope both ends of the TCP transport use
# ---------------------------------------------------------------------- #


def frame_bytes(request_id: int, body: bytes) -> bytes:
    """One framed ``(request_id, body)`` message as raw bytes."""
    return _FRAME.pack(request_id, len(body)) + body


def send_frame(sock, request_id: int, body: bytes) -> None:
    """Write one ``(request_id, body)`` frame to a socket."""
    sock.sendall(frame_bytes(request_id, body))


def _recv_exact(sock, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on a clean EOF at a boundary."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> tuple[int, bytes] | None:
    """Read one frame; ``None`` when the peer closed between frames.

    Raises:
        WireError: on truncation mid-frame or an implausible body length.
    """
    header = _recv_exact(sock, _FRAME.size)
    if header is None:
        return None
    request_id, length = _FRAME.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame body of {length} bytes exceeds the cap")
    body = _recv_exact(sock, length)
    if body is None:
        raise WireError("connection closed before frame body")
    return request_id, body


def extract_frame(buffer: bytearray) -> tuple[int, bytes] | None:
    """Pop one complete frame off the front of a receive ``buffer``.

    The incremental-parsing counterpart of :func:`recv_frame` for
    non-blocking readers: returns ``None`` while the buffer holds only a
    partial frame, otherwise consumes and returns ``(request_id, body)``.

    Raises:
        WireError: on an implausible body length (corrupted stream).
    """
    if len(buffer) < _FRAME.size:
        return None
    request_id, length = _FRAME.unpack_from(bytes(buffer[:_FRAME.size]))
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame body of {length} bytes exceeds the cap")
    total = _FRAME.size + length
    if len(buffer) < total:
        return None
    body = bytes(buffer[_FRAME.size:total])
    del buffer[:total]
    return request_id, body
