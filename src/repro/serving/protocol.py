"""Typed request/response protocol for the cost-model service.

The paper's deployment mode is a model trained offline and queried at
compile time; the service speaks exactly the three query shapes that
compile-time clients (tile autotuners, fusion tuners, benchmark drivers)
issue:

* :class:`TileScoresRequest` — rank candidate tiles of one kernel;
* :class:`KernelRuntimeRequest` — predict one kernel's absolute runtime;
* :class:`ProgramRuntimesRequest` — price a population of candidate
  programs (fusion-search populations).

Requests are plain frozen dataclasses so they can cross a transport
boundary later (the in-process service passes them by reference). Every
request exposes a ``shard_key`` (the kernel fingerprint used to route it
to a replica) and, when the result is safely memoizable, a ``cache_key``
for the service's shared result cache.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compiler.kernels import Kernel
from ..compiler.tiling import TileConfig


@dataclass(frozen=True)
class TileScoresRequest:
    """Score candidate tiles of one kernel (lower score = faster).

    Attributes:
        kernel: the kernel being tuned.
        tiles: candidate tile configurations to rank.
    """

    kernel: Kernel
    tiles: tuple[TileConfig, ...]

    def shard_key(self) -> str:
        return self.kernel.fingerprint()

    def cache_key(self) -> tuple:
        return ("tiles", self.kernel.fingerprint(), tuple(t.dims for t in self.tiles))


@dataclass(frozen=True)
class KernelRuntimeRequest:
    """Predict one kernel's absolute runtime in seconds."""

    kernel: Kernel

    def shard_key(self) -> str:
        return self.kernel.fingerprint()

    def cache_key(self) -> tuple:
        return ("kernel", self.kernel.fingerprint())


@dataclass(frozen=True)
class ProgramRuntimesRequest:
    """Predict total runtimes for many candidate programs at once.

    Attributes:
        programs: one tuple of kernels per candidate program (a fusion
            configuration applied to a graph yields such a kernel list).
    """

    programs: tuple[tuple[Kernel, ...], ...]

    def shard_key(self) -> str:
        # Route whole populations by their first kernel so one replica's
        # prediction memo sees all configurations of one search.
        for kernels in self.programs:
            if kernels:
                return kernels[0].fingerprint()
        return ""

    def cache_key(self) -> None:
        # Populations are open-ended and rarely repeat exactly; per-kernel
        # memoization inside the replica already captures the reuse.
        return None


Request = TileScoresRequest | KernelRuntimeRequest | ProgramRuntimesRequest


@dataclass
class Response:
    """Result of one request.

    Attributes:
        value: ``np.ndarray`` of scores/runtimes (tile and program
            requests) or a float (kernel-runtime requests).
        model_version: registry version of the checkpoint that produced
            ``value`` — one version per response, always (hot swaps apply
            between batches, never inside one).
        batch_size: number of coalesced requests in the executed
            micro-batch ('1' for cache hits), for occupancy accounting.
        cache_hit: served from the shared result cache without a forward.
        latency_s: submit-to-resolution wall time.
        error: traceback string when the request failed; ``value`` is None.
    """

    value: np.ndarray | float | None
    model_version: str
    batch_size: int = 1
    cache_hit: bool = False
    latency_s: float = 0.0
    error: str | None = None

    def unwrap(self) -> np.ndarray | float:
        """The value, raising ``RuntimeError`` if the request failed."""
        if self.error is not None:
            raise RuntimeError(f"cost-model request failed: {self.error}")
        assert self.value is not None
        return self.value
