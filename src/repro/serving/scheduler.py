"""Micro-batching scheduler: coalesce queued requests into batches.

Clients submit requests from any thread and immediately get a
:class:`concurrent.futures.Future`. The scheduler holds the pending
requests in arrival order and releases them in *micro-batches*: a batch is
cut as soon as ``max_batch_size`` requests are pending, or once the oldest
pending request has waited ``flush_interval_s`` — the classic
latency/throughput dial of serving systems. The batch executor (the
service's worker loop) turns each micro-batch into as few model forwards
as possible.

With ``adaptive_flush`` the age cutoff is derived from the observed
request inter-arrival gap (an EMA) instead of being fixed: when arrivals
are sparser than the flush window — a lone synchronous client whose next
request only arrives after the current one resolves — waiting can never
coalesce anything, so the batch is cut immediately; when arrivals are
dense, the full window applies and coalescing wins. This removes the
fixed-window latency tax in the 1-client regime while keeping the
many-client throughput win.

The scheduler is transport-agnostic and knows nothing about models; it is
the scheduling core that every transport frontend (the in-process client
path and the socket frontend alike) feeds.
"""
from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from .protocol import Request
from .resilience import Overloaded


@dataclass
class PendingRequest:
    """One queued request: payload, arrival time, and its future.

    ``routed_version`` / ``shadowed_by`` are stamped at batch-execution
    time by the service's rollout version chooser (the policy in front of
    the per-batch snapshot), so the executor split and the response tags
    always agree — a canary batch is version-pure by construction.

    ``expires_at`` (perf_counter time) is the request's deadline, stamped
    at submission from its ``deadline_s`` (or the batcher's default);
    the service sheds requests past it before dispatch with a typed
    ``deadline_exceeded`` instead of spending a forward on an answer the
    client has stopped waiting for.
    """

    request: Request
    enqueued_at: float
    future: Future = field(default_factory=Future, repr=False)
    routed_version: str | None = None
    shadowed_by: str | None = None
    expires_at: float | None = None


class MicroBatcher:
    """Thread-safe request queue with size/age batch-cut policy.

    Args:
        max_batch_size: cut a batch as soon as this many requests queue up.
        flush_interval_s: cut a batch once the oldest pending request has
            waited this long, even if the batch is not full (bounds the
            latency a lone client pays for batching).
        adaptive_flush: derive the effective age cutoff from the observed
            inter-arrival EMA — collapse it to zero while arrivals are
            sparser than the window (waiting cannot coalesce), restore the
            full window while they are dense.
        gap_ema_alpha: EMA smoothing weight for the inter-arrival gap.
            The first observed gap initializes the EMA directly (a lone
            synchronous client flips to the zero-wait regime on its
            second request); afterwards a small weight keeps one long
            inter-burst gap — e.g. the execution time of the previous
            batch, during which every client was blocked — from spiking
            the estimate above the window and prematurely cutting the
            next batch.
        max_pending: admission-control bound on the queue — a submission
            arriving with this many requests already pending is shed
            immediately with a typed :class:`~.resilience.Overloaded`
            instead of queueing unboundedly (0 = unbounded, the
            pre-resilience behavior).
        default_deadline_s: deadline stamped on requests that carry none
            of their own (``None`` = no default; such requests never
            expire).
    """

    #: Cap on one observed inter-arrival gap: a single long idle pause
    #: (e.g. between benchmark phases) must not dominate the EMA for the
    #: first requests of the next burst.
    _GAP_CLAMP_S = 0.25

    #: Smoothing weight of the queue-pressure EMA (sampled at each batch
    #: cut as pending / max_batch_size — the placement controller's
    #: autoscaling signal).
    _PRESSURE_ALPHA = 0.2

    def __init__(
        self,
        max_batch_size: int = 64,
        flush_interval_s: float = 0.002,
        adaptive_flush: bool = False,
        gap_ema_alpha: float = 0.1,
        max_pending: int = 0,
        default_deadline_s: float | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if flush_interval_s < 0:
            raise ValueError("flush_interval_s must be >= 0")
        if not 0.0 < gap_ema_alpha <= 1.0:
            raise ValueError("gap_ema_alpha must be in (0, 1]")
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0 (0 = unbounded)")
        self.max_batch_size = max_batch_size
        self.flush_interval_s = flush_interval_s
        self.adaptive_flush = adaptive_flush
        self.gap_ema_alpha = gap_ema_alpha
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self._gap_ema: float | None = None
        self._pressure_ema = 0.0
        self._last_arrival: float | None = None
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._pending: list[PendingRequest] = []
        self._closed = False
        self.submitted = 0
        self.rejected = 0
        #: Duck-typed continuous profiler (anything with
        #: ``record_stage(stage, duration_s, ...)``); ``None`` by default
        #: — the hook in :meth:`_cut` is one None-check, so the
        #: unprofiled scheduler is unchanged.
        self.profiler = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def submit(self, request: Request) -> Future:
        """Enqueue a request; returns the future its response resolves.

        Raises:
            Overloaded: the queue is at ``max_pending`` (admission
                control sheds at the door, not after queueing).
            RuntimeError: the scheduler is closed.
        """
        pending = PendingRequest(request=request, enqueued_at=time.perf_counter())
        # getattr: foreign request-like objects (tests exercise the
        # malformed-request path) may not carry the deadline field.
        deadline = getattr(request, "deadline_s", None)
        if deadline is None:
            deadline = self.default_deadline_s
        if deadline is not None:
            pending.expires_at = pending.enqueued_at + deadline
        with self._nonempty:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if self.max_pending and len(self._pending) >= self.max_pending:
                self.rejected += 1
                raise Overloaded(
                    f"scheduler backlog at {len(self._pending)} requests "
                    f"(max_pending={self.max_pending})"
                )
            if self._last_arrival is not None:
                gap = min(pending.enqueued_at - self._last_arrival, self._GAP_CLAMP_S)
                if self._gap_ema is None:
                    self._gap_ema = gap
                else:
                    alpha = self.gap_ema_alpha
                    self._gap_ema = (1.0 - alpha) * self._gap_ema + alpha * gap
            self._last_arrival = pending.enqueued_at
            self._pending.append(pending)
            self.submitted += 1
            self._nonempty.notify()
        return pending.future

    @property
    def arrival_gap_ema_s(self) -> float | None:
        """Smoothed inter-arrival gap (None before two submissions)."""
        with self._lock:
            return self._gap_ema

    def effective_flush_interval(self) -> float:
        """The age cutoff currently in force.

        Fixed mode returns ``flush_interval_s``. Adaptive mode collapses
        the cutoff to zero while the inter-arrival EMA exceeds the window:
        the expected wait for even one more co-batchable request is longer
        than we are willing to hold the batch, so holding it buys nothing
        (the lone-synchronous-client regime). Dense arrivals restore the
        full window.
        """
        if not self.adaptive_flush or self._gap_ema is None:
            return self.flush_interval_s
        if self._gap_ema >= self.flush_interval_s:
            return 0.0
        return self.flush_interval_s

    def next_batch(self, timeout: float | None = None) -> list[PendingRequest]:
        """Block until a batch is due, then return it (oldest first).

        A batch is due when ``max_batch_size`` requests are pending or the
        oldest has aged past ``flush_interval_s``. Returns ``[]`` on
        ``timeout`` (the caller's chance to notice shutdown) and after
        :meth:`close` once the queue has drained.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._nonempty:
            while True:
                if self._pending:
                    if len(self._pending) >= self.max_batch_size or self._closed:
                        return self._cut()
                    interval = self.effective_flush_interval()
                    age = time.perf_counter() - self._pending[0].enqueued_at
                    if age >= interval:
                        return self._cut()
                    wait = interval - age
                elif self._closed:
                    return []
                else:
                    wait = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        if not self._pending:
                            # An idle tick is a genuine zero-pressure
                            # observation: without it the EMA would
                            # freeze at the last burst's value and keep
                            # autoscaling long after traffic stopped.
                            self._pressure_ema *= 1.0 - self._PRESSURE_ALPHA
                        return []
                    wait = remaining if wait is None else min(wait, remaining)
                self._nonempty.wait(wait)

    def drain(self) -> list[PendingRequest]:
        """Take whatever is pending right now, without blocking (tests,
        manual pumping, and shutdown all want an immediate cut)."""
        with self._lock:
            return self._cut()

    def close(self) -> None:
        """Refuse new submissions; wakes any blocked :meth:`next_batch`."""
        with self._nonempty:
            self._closed = True
            self._nonempty.notify_all()

    def register_into(self, registry) -> None:
        """Contribute queue accounting to a telemetry registry.

        Duck-typed (any object with ``register_collector`` /
        ``mark_counter``) so the scheduling core keeps zero imports on
        the telemetry module.
        """

        def _snapshot() -> dict:
            with self._lock:
                return {
                    "scheduler_submitted": float(self.submitted),
                    "scheduler_rejected": float(self.rejected),
                    "scheduler_pending_now": float(len(self._pending)),
                    "scheduler_max_pending": float(self.max_pending),
                }

        registry.register_collector("scheduler", _snapshot)
        registry.mark_counter("scheduler_submitted", "scheduler_rejected")

    def queue_pressure(self) -> float:
        """Smoothed backlog at batch-cut time, in units of batch capacity.

        ~0 means batches are cut with room to spare (arrivals are the
        bottleneck); ~1 means every cut goes out full with a queue still
        behind it (execution is the bottleneck); > 1 means the backlog
        exceeds one batch — the signal the placement controller's replica
        autoscaling grows the shard count on.
        """
        with self._lock:
            return self._pressure_ema

    def _cut(self) -> list[PendingRequest]:
        depth = len(self._pending) / self.max_batch_size
        self._pressure_ema = (
            (1.0 - self._PRESSURE_ALPHA) * self._pressure_ema
            + self._PRESSURE_ALPHA * depth
        )
        batch = self._pending[: self.max_batch_size]
        del self._pending[: self.max_batch_size]
        if self.profiler is not None and batch:
            # The batching delay this cut imposed: the age of the oldest
            # request at the moment the batch went out.
            self.profiler.record_stage(
                "batch.cut", time.perf_counter() - batch[0].enqueued_at
            )
        return batch
