"""Micro-batching scheduler: coalesce queued requests into batches.

Clients submit requests from any thread and immediately get a
:class:`concurrent.futures.Future`. The scheduler holds the pending
requests in arrival order and releases them in *micro-batches*: a batch is
cut as soon as ``max_batch_size`` requests are pending, or once the oldest
pending request has waited ``flush_interval_s`` — the classic
latency/throughput dial of serving systems. The batch executor (the
service's worker loop) turns each micro-batch into as few model forwards
as possible.

The scheduler is transport-agnostic and knows nothing about models; it is
the piece a remote (socket/gRPC) front-end would feed in a cross-process
deployment.
"""
from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from .protocol import Request


@dataclass
class PendingRequest:
    """One queued request: payload, arrival time, and its future."""

    request: Request
    enqueued_at: float
    future: Future = field(default_factory=Future, repr=False)


class MicroBatcher:
    """Thread-safe request queue with size/age batch-cut policy.

    Args:
        max_batch_size: cut a batch as soon as this many requests queue up.
        flush_interval_s: cut a batch once the oldest pending request has
            waited this long, even if the batch is not full (bounds the
            latency a lone client pays for batching).
    """

    def __init__(self, max_batch_size: int = 64, flush_interval_s: float = 0.002) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if flush_interval_s < 0:
            raise ValueError("flush_interval_s must be >= 0")
        self.max_batch_size = max_batch_size
        self.flush_interval_s = flush_interval_s
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._pending: list[PendingRequest] = []
        self._closed = False
        self.submitted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def submit(self, request: Request) -> Future:
        """Enqueue a request; returns the future its response resolves."""
        pending = PendingRequest(request=request, enqueued_at=time.perf_counter())
        with self._nonempty:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._pending.append(pending)
            self.submitted += 1
            self._nonempty.notify()
        return pending.future

    def next_batch(self, timeout: float | None = None) -> list[PendingRequest]:
        """Block until a batch is due, then return it (oldest first).

        A batch is due when ``max_batch_size`` requests are pending or the
        oldest has aged past ``flush_interval_s``. Returns ``[]`` on
        ``timeout`` (the caller's chance to notice shutdown) and after
        :meth:`close` once the queue has drained.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._nonempty:
            while True:
                if self._pending:
                    if len(self._pending) >= self.max_batch_size or self._closed:
                        return self._cut()
                    age = time.perf_counter() - self._pending[0].enqueued_at
                    if age >= self.flush_interval_s:
                        return self._cut()
                    wait = self.flush_interval_s - age
                elif self._closed:
                    return []
                else:
                    wait = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return []
                    wait = remaining if wait is None else min(wait, remaining)
                self._nonempty.wait(wait)

    def drain(self) -> list[PendingRequest]:
        """Take whatever is pending right now, without blocking (tests,
        manual pumping, and shutdown all want an immediate cut)."""
        with self._lock:
            return self._cut()

    def close(self) -> None:
        """Refuse new submissions; wakes any blocked :meth:`next_batch`."""
        with self._nonempty:
            self._closed = True
            self._nonempty.notify_all()

    def _cut(self) -> list[PendingRequest]:
        batch = self._pending[: self.max_batch_size]
        del self._pending[: self.max_batch_size]
        return batch
