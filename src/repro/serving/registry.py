"""Versioned model registry with atomic activation and disk spill.

Checkpoints are stored as the sealed blob bytes produced by
:func:`repro.models.serialize.save_model_bytes` — publishing and
hot-swapping a checkpoint is a pure in-memory operation, and the bytes
form is exactly what ships to executor worker processes (over pipes) and
remote nodes (over sockets). :meth:`ModelRegistry.spill` writes those
same bytes to a directory (one file per version plus a manifest) and
:meth:`ModelRegistry.load` restores them byte-identically, so a restarted
service — or a fresh worker on another machine — recovers the exact
active checkpoint.

Activation is a single reference swap under a lock: the service snapshots
the active version once per micro-batch, so an in-flight batch keeps the
checkpoint it started with and a swap never mixes two checkpoints inside
one response.

Staged-version lifecycle (the deployment control plane's half of the
contract): :meth:`stage` marks one version as *staged* — published,
shippable to executors, but never serving unless a rollout policy
explicitly routes to it. The staged marker survives spill/load, is
cleared by a rollback (:meth:`clear_staged`) or consumed by promotion
(:meth:`activate` of the staged version), and — like the active version —
is exempt from retention pruning.
"""
from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path

from ..models.serialize import (
    load_model_bytes,
    save_model_bytes,
    validate_model_blob,
)
from ..models.trainer import TrainResult

#: Version names double as spill file names, so they are restricted to
#: filesystem-safe characters.
_VERSION_RE = re.compile(r"^[A-Za-z0-9._-]+$")

_MANIFEST_NAME = "manifest.json"
_BLOB_SUFFIX = ".ckpt"


def _write_atomic(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file +
    ``os.replace``, so a crash mid-write never leaves a truncated file
    under the final name (``os.replace`` is atomic within a filesystem)."""
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


class ModelRegistry:
    """In-memory store of serialized checkpoints, one of them *active*.

    Versions are auto-assigned (``v1``, ``v2``, ...) unless the caller
    names them. Deserialized checkpoints are memoized per version, so
    repeated :meth:`get` calls (every replica-pool rebuild) pay the npz
    decode once.

    Args:
        retain: keep at most this many published versions; publishing
            past the bound drops the oldest versions that are neither
            active nor staged (a continuous-learning loop publishes
            forever — the registry must not grow forever with it).
            ``None`` (default) disables pruning.
    """

    def __init__(self, retain: int | None = None) -> None:
        if retain is not None and retain < 2:
            # Active + staged can coexist; a bound of 1 would have to
            # drop one of them.
            raise ValueError("retain must be >= 2 (or None)")
        self._lock = threading.Lock()
        self._retain = retain
        self._blobs: dict[str, bytes] = {}
        self._materialized: dict[str, TrainResult] = {}
        self._order: list[str] = []
        self._active: str | None = None
        self._staged: str | None = None
        self._counter = 0
        #: Duck-typed ops journal (anything with ``record(kind, **f)``);
        #: ``None`` by default — every hook below is one None-check.
        self.journal = None

    def _journal(self, kind: str, **fields) -> None:
        """Record a lifecycle event; never under the registry lock, and
        never allowed to fail a registry operation."""
        if self.journal is None:
            return
        try:
            self.journal.record(kind, **fields)
        except Exception:
            pass

    def publish(
        self,
        result: TrainResult | bytes,
        version: str | None = None,
        activate: bool = True,
        stage: bool = False,
    ) -> str:
        """Store a checkpoint; returns its version string.

        Args:
            result: a trained :class:`TrainResult` (serialized internally)
                or pre-serialized checkpoint bytes.
            version: explicit version name; auto-assigned when ``None``.
            activate: immediately make this the active version. With
                ``activate=False`` the registry's active version is left
                untouched — including ``None`` on a fresh registry (staged
                checkpoints never serve before an explicit
                :meth:`activate`).
            stage: mark the new version as *staged* (mutually exclusive
                with ``activate``). The marker is set inside the same
                locked section as retention pruning, so a freshly staged
                version can never be its own retention victim.

        Raises:
            ValueError: if ``version`` is already taken or not a
                filesystem-safe name (it doubles as the spill file name).
            ModelBlobError: if ``result`` is bytes that fail integrity
                validation (a garbage blob is rejected at publish time,
                not when a worker tries to serve it).
        """
        if activate and stage:
            raise ValueError("a version cannot be both active and staged")
        if isinstance(result, bytes):
            validate_model_blob(result)
            blob = result
        else:
            blob = save_model_bytes(result)
        with self._lock:
            if version is None:
                self._counter += 1
                version = f"v{self._counter}"
            elif not _VERSION_RE.match(version):
                raise ValueError(
                    f"version {version!r} is not a filesystem-safe name"
                )
            if version in self._blobs:
                raise ValueError(f"version {version!r} already published")
            # Keep auto-numbering ahead of explicit vN names so a reloaded
            # registry (or a caller mixing both styles) never collides.
            match = re.fullmatch(r"v(\d+)", version)
            if match:
                self._counter = max(self._counter, int(match.group(1)))
            self._blobs[version] = blob
            self._order.append(version)
            if activate:
                self._active = version
                if self._staged == version:
                    self._staged = None
            if stage:
                self._staged = version
            self._prune_materialized_locked()
            self._prune_retention_locked()
        self._journal(
            "registry.publish", version=version, activated=activate, staged=stage
        )
        return version

    def activate(self, version: str) -> None:
        """Atomically make ``version`` the active checkpoint.

        Activating the staged version consumes the staged marker — that
        *is* a promotion.
        """
        with self._lock:
            if version not in self._blobs:
                raise KeyError(f"unknown model version {version!r}")
            previous = self._active
            promoted = self._staged == version
            self._active = version
            if promoted:
                self._staged = None
            self._prune_materialized_locked()
            self._prune_retention_locked()
        self._journal(
            "registry.activate",
            version=version,
            previous=previous,
            promoted=promoted,
        )

    # ------------------------------------------------------------------ #
    # staged-version lifecycle
    # ------------------------------------------------------------------ #

    def stage(
        self,
        result: TrainResult | bytes | str,
        version: str | None = None,
    ) -> str:
        """Publish (without activating) and mark a checkpoint as staged.

        Args:
            result: a :class:`TrainResult`, pre-serialized blob bytes, or
                the name of an **already published** version to stage.
            version: explicit version name when publishing.

        Returns the staged version string. Staging replaces any previous
        staged marker (the old staged version stays published but loses
        its pruning exemption).
        """
        if isinstance(result, str):
            if version is not None and version != result:
                raise ValueError("cannot rename an already-published version")
            with self._lock:
                if result not in self._blobs:
                    raise KeyError(f"unknown model version {result!r}")
                if result == self._active:
                    raise ValueError(
                        f"version {result!r} is active; a version cannot be "
                        "both active and staged"
                    )
                self._staged = result
            self._journal("registry.stage", version=result)
            return result
        return self.publish(result, version=version, activate=False, stage=True)

    def clear_staged(self) -> None:
        """Drop the staged marker (a rollback); the blob stays published
        until retention prunes it."""
        with self._lock:
            cleared = self._staged
            self._staged = None
            self._prune_materialized_locked()
            self._prune_retention_locked()
        if cleared is not None:
            self._journal("registry.clear_staged", version=cleared)

    @property
    def staged_version(self) -> str | None:
        """The currently staged version (``None`` when nothing is staged)."""
        with self._lock:
            return self._staged

    def _prune_materialized_locked(self) -> None:
        """Drop deserialized models of versions that are neither active
        nor staged (the blobs can rebuild them on demand) so a long
        publish/swap history doesn't pin every old checkpoint's
        parameters in memory. Active *and* staged stay warm — a live
        rollout serves both concurrently."""
        keep = {self._active, self._staged}
        for version in list(self._materialized):
            if version not in keep:
                del self._materialized[version]

    def _prune_retention_locked(self) -> None:
        """Enforce the retention bound, never touching active or staged."""
        if self._retain is None:
            return
        while len(self._order) > self._retain:
            victim = next(
                (
                    v
                    for v in self._order
                    if v != self._active and v != self._staged
                ),
                None,
            )
            if victim is None:
                return
            self._order.remove(victim)
            del self._blobs[victim]
            self._materialized.pop(victim, None)

    def __contains__(self, version: str) -> bool:
        with self._lock:
            return version in self._blobs

    @property
    def active_version(self) -> str | None:
        """The currently active version (``None`` when empty)."""
        with self._lock:
            return self._active

    @property
    def versions(self) -> list[str]:
        """All published versions, in publication order."""
        with self._lock:
            return list(self._order)

    @property
    def live_versions(self) -> tuple[str, ...]:
        """Versions an executor must keep warm: active first, then staged.

        This is the blob-sync set for placement changes — a newly spawned
        shard worker is synced to every live version before the shard map
        swaps to it, so a mid-rollout migration can serve a canary- or
        shadow-routed batch from the new worker without a cold blob load
        (and without ever mixing versions inside a batch).
        """
        with self._lock:
            return tuple(
                v for v in (self._active, self._staged) if v is not None
            )

    def get(self, version: str) -> TrainResult:
        """Deserialize (memoized) the checkpoint stored under ``version``."""
        with self._lock:
            blob = self._blobs.get(version)
            cached = self._materialized.get(version)
        if blob is None:
            raise KeyError(f"unknown model version {version!r}")
        if cached is not None:
            return cached
        result = load_model_bytes(blob)
        with self._lock:
            self._materialized.setdefault(version, result)
            return self._materialized[version]

    def blob(self, version: str) -> bytes:
        """The raw serialized checkpoint (what a remote node would fetch)."""
        with self._lock:
            try:
                return self._blobs[version]
            except KeyError:
                raise KeyError(f"unknown model version {version!r}") from None

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def spill(self, directory: str | Path) -> Path:
        """Write every checkpoint + a manifest to ``directory``.

        Each version lands as ``<version>.ckpt`` holding its exact blob
        bytes; ``manifest.json`` records publication order, the active
        version, and the staged version. Re-spilling over an existing
        directory overwrites — version blobs are immutable, so this is
        idempotent.

        Every file is written atomically (same-directory temp file +
        ``os.replace``): a process killed mid-spill leaves either the
        previous complete file or the new complete file, never a
        truncated blob — so a warm-start :meth:`load` after a crash
        always sees integrity-valid checkpoints.

        Returns:
            The directory written.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock:
            blobs = dict(self._blobs)
            order = list(self._order)
            active = self._active
            staged = self._staged
        for version, blob in blobs.items():
            _write_atomic(directory / f"{version}{_BLOB_SUFFIX}", blob)
        manifest = {"versions": order, "active": active, "staged": staged}
        _write_atomic(
            directory / _MANIFEST_NAME,
            json.dumps(manifest, indent=2).encode(),
        )
        self._journal(
            "registry.spill",
            directory=str(directory),
            versions=len(order),
            active=active,
            staged=staged,
        )
        return directory

    @classmethod
    def load(
        cls,
        directory: str | Path,
        retain: int | None = None,
        journal=None,
    ) -> "ModelRegistry":
        """Restore a registry spilled by :meth:`spill`, byte-identically.

        Every blob is integrity-checked on the way in (typed
        ``ModelBlobError`` on truncation/corruption), the publication
        order, active version, and staged marker are restored, and
        auto-numbering resumes past the highest reloaded ``vN``.

        Raises:
            FileNotFoundError: no manifest (or a missing version file).
            ModelBlobError: a checkpoint file failed validation.
        """
        directory = Path(directory)
        manifest = json.loads((directory / _MANIFEST_NAME).read_text())
        # Retention is applied only after the active/staged markers are
        # restored — pruning mid-load could otherwise evict the very
        # version the manifest is about to activate.
        registry = cls()
        for version in manifest["versions"]:
            blob = (directory / f"{version}{_BLOB_SUFFIX}").read_bytes()
            registry.publish(blob, version=version, activate=False)
        if manifest["active"] is not None:
            registry.activate(manifest["active"])
        # .get(): manifests written before the control plane carry no
        # staged marker.
        staged = manifest.get("staged")
        if staged is not None:
            registry.stage(staged)
        if retain is not None:
            if retain < 2:
                raise ValueError("retain must be >= 2 (or None)")
            with registry._lock:
                registry._retain = retain
                registry._prune_retention_locked()
        # Attach the journal only after the interior publish/activate
        # replays — the restore is one event, not a re-run of history.
        registry.journal = journal
        registry._journal(
            "registry.load",
            directory=str(directory),
            versions=len(registry.versions),
            active=registry.active_version,
            staged=registry.staged_version,
        )
        return registry
