"""Versioned model registry with atomic activation.

Checkpoints are stored as the serialized npz bytes produced by
:func:`repro.models.serialize.save_model_bytes` — the registry never
touches disk, so publishing and hot-swapping a checkpoint is a pure
in-memory operation (and the bytes form is exactly what a cross-process
registry would ship over a wire).

Activation is a single reference swap under a lock: the service snapshots
the active version once per micro-batch, so an in-flight batch keeps the
checkpoint it started with and a swap never mixes two checkpoints inside
one response.
"""
from __future__ import annotations

import threading

from ..models.serialize import load_model_bytes, save_model_bytes
from ..models.trainer import TrainResult


class ModelRegistry:
    """In-memory store of serialized checkpoints, one of them *active*.

    Versions are auto-assigned (``v1``, ``v2``, ...) unless the caller
    names them. Deserialized checkpoints are memoized per version, so
    repeated :meth:`get` calls (every replica-pool rebuild) pay the npz
    decode once.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._blobs: dict[str, bytes] = {}
        self._materialized: dict[str, TrainResult] = {}
        self._order: list[str] = []
        self._active: str | None = None
        self._counter = 0

    def publish(
        self,
        result: TrainResult | bytes,
        version: str | None = None,
        activate: bool = True,
    ) -> str:
        """Store a checkpoint; returns its version string.

        Args:
            result: a trained :class:`TrainResult` (serialized internally)
                or pre-serialized checkpoint bytes.
            version: explicit version name; auto-assigned when ``None``.
            activate: immediately make this the active version. With
                ``activate=False`` the registry's active version is left
                untouched — including ``None`` on a fresh registry (staged
                checkpoints never serve before an explicit
                :meth:`activate`).

        Raises:
            ValueError: if ``version`` is already taken.
        """
        blob = result if isinstance(result, bytes) else save_model_bytes(result)
        with self._lock:
            if version is None:
                self._counter += 1
                version = f"v{self._counter}"
            if version in self._blobs:
                raise ValueError(f"version {version!r} already published")
            self._blobs[version] = blob
            self._order.append(version)
            if activate:
                self._active = version
            self._prune_materialized_locked()
        return version

    def activate(self, version: str) -> None:
        """Atomically make ``version`` the active checkpoint."""
        with self._lock:
            if version not in self._blobs:
                raise KeyError(f"unknown model version {version!r}")
            self._active = version
            self._prune_materialized_locked()

    def _prune_materialized_locked(self) -> None:
        """Drop deserialized models of non-active versions (the blobs can
        rebuild them on demand) so a long publish/swap history doesn't pin
        every old checkpoint's parameters in memory."""
        for version in list(self._materialized):
            if version != self._active:
                del self._materialized[version]

    @property
    def active_version(self) -> str | None:
        """The currently active version (``None`` when empty)."""
        with self._lock:
            return self._active

    @property
    def versions(self) -> list[str]:
        """All published versions, in publication order."""
        with self._lock:
            return list(self._order)

    def get(self, version: str) -> TrainResult:
        """Deserialize (memoized) the checkpoint stored under ``version``."""
        with self._lock:
            blob = self._blobs.get(version)
            cached = self._materialized.get(version)
        if blob is None:
            raise KeyError(f"unknown model version {version!r}")
        if cached is not None:
            return cached
        result = load_model_bytes(blob)
        with self._lock:
            self._materialized.setdefault(version, result)
            return self._materialized[version]

    def blob(self, version: str) -> bytes:
        """The raw serialized checkpoint (what a remote node would fetch)."""
        with self._lock:
            try:
                return self._blobs[version]
            except KeyError:
                raise KeyError(f"unknown model version {version!r}") from None
