"""Online feedback: join served predictions with measured runtimes.

The paper's cost model earns its keep only while its predictions track
the hardware — Kaufman et al. lean on re-training/fine-tuning when new
workloads arrive (Sec. 7.1), which presupposes a deployment loop that
*notices* when accuracy drifts. This module is that loop's sensory half:

* the service records every served prediction (response path and
  shadow-scored alike) under a stable request key;
* the measurement side — :class:`~repro.tpu.TpuSimulator` standing in
  for hardware — reports measured runtimes under the same key;
* the :class:`FeedbackCollector` joins the two into a bounded
  **per-version error window**, the signal the
  :class:`~repro.serving.rollout.RolloutController` promotes and rolls
  back on, and retains the joined samples themselves as a training
  buffer for the continuous-learning loop
  (:func:`repro.models.trainer.fine_tune_on_feedback`).

Errors are normalized to [0, 1] so windows of different request kinds
are comparable: scalar predictions score a capped relative error,
vector predictions (tile scores vs. measured tile runtimes) score the
discordant-pair fraction — rank quality is what the tile model is *for*
(the paper evaluates it with Kendall's tau for the same reason).
"""
from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from .protocol import KernelRuntimeRequest, Request, TileScoresRequest


def request_key(request: Request) -> tuple:
    """Stable join key for one request (prediction side = measurement side).

    Prefers the protocol's ``cache_key`` (kernel fingerprint + tile dims,
    stable across processes); program-population requests, whose cache key
    is ``None`` by design, fall back to their fingerprint sequence.
    """
    try:
        key = request.cache_key()
        if key is not None:
            return key
        return ("programs", tuple(request.fingerprints()))
    except Exception:
        return ("opaque", repr(request))


def prediction_error(predicted, measured) -> float:
    """Normalized [0, 1] error of one prediction against its measurement.

    * vectors (candidate-tile scores vs. measured tile runtimes): the
      discordant-pair fraction — the probability that the model mis-orders
      a random pair the hardware separates. 0 = perfect ranking, ~0.5 =
      random, ~1 = anti-correlated. Ranking is the deployed contract of
      the tile model, so ranking error is what rollouts gate on.
    * scalars (kernel/program runtimes): relative absolute error, capped
      at 1 so one wild prediction cannot dominate a window mean.
    """
    pred = np.asarray(predicted, dtype=np.float64).reshape(-1)
    meas = np.asarray(measured, dtype=np.float64).reshape(-1)
    if pred.size != meas.size:
        return 1.0
    if pred.size == 0:
        return 0.0
    if pred.size == 1:
        denom = max(abs(float(meas[0])), 1e-12)
        return float(min(abs(float(pred[0]) - float(meas[0])) / denom, 1.0))
    # Discordant-pair fraction over pairs the measurement distinguishes.
    diff_m = np.sign(meas[:, None] - meas[None, :])
    diff_p = np.sign(pred[:, None] - pred[None, :])
    upper = np.triu_indices(pred.size, k=1)
    comparable = diff_m[upper] != 0
    total = int(comparable.sum())
    if total == 0:
        return 0.0
    discordant = int((diff_p[upper][comparable] != diff_m[upper][comparable]).sum())
    return discordant / total


@dataclass(frozen=True)
class FeedbackSample:
    """One joined (prediction, measurement) observation.

    Attributes:
        version: checkpoint that produced the prediction.
        request: the request that was priced (``None`` if the recorder
            did not attach it); tile requests carry the kernel + tiles
            the continuous-training loop needs.
        predicted / measured: the joined values (array or scalar).
        error: normalized error from :func:`prediction_error`.
        shadow: prediction came from off-response-path shadow scoring.
    """

    version: str
    request: Request | None
    predicted: object
    measured: object
    error: float
    shadow: bool


@dataclass(frozen=True)
class WindowSnapshot:
    """One version's online accuracy window at a point in time.

    Attributes:
        count: observations currently in the (bounded) error window.
        mean_error / max_error: summary of that window.
        total: **monotone** count of every observation ever joined for
            this version — unlike ``count`` it never saturates at the
            window length, which is what makes it safe to measure
            progress against (the rollout controller's per-phase sample
            budgets difference this, not ``count``).
    """

    count: int
    mean_error: float
    max_error: float
    total: int


_EMPTY_WINDOW = WindowSnapshot(count=0, mean_error=0.0, max_error=0.0, total=0)


class FeedbackCollector:
    """Thread-safe join of served predictions with measured runtimes.

    Args:
        window: per-version error ring-buffer length (the rollout
            controller reads windowed means, so stale traffic ages out).
        max_pending: bound on un-joined predictions held for a future
            measurement (LRU by key — measurements that never arrive
            must not grow memory).
        retain_samples: bound on the joined-sample training buffer.

    The join is **symmetric in arrival order**: predictions waiting for a
    measurement pend (bounded), and measurements are retained (bounded,
    LRU) so a prediction arriving *after* its key was measured joins
    immediately against the latest known measurement. That matters for
    shadow scoring, which by design records its predictions after the
    response futures resolve — a driver that reports the measurement the
    moment its response arrives must still feed the staged window.

    The collector never blocks the serving hot path: recording is an
    O(1) append under a lock, and joining happens on the recorder's
    thread.
    """

    #: Bound on un-joined predictions held under one key (a key whose
    #: measurement never arrives must not grow a list without bound).
    _MAX_ENTRIES_PER_KEY = 16

    def __init__(
        self,
        window: int = 256,
        max_pending: int = 4096,
        retain_samples: int = 1024,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.max_pending = max_pending
        self._lock = threading.Lock()
        #: key -> list of (version, predicted, request, shadow) awaiting joins.
        self._pending: OrderedDict[tuple, list] = OrderedDict()
        #: key -> latest measured value (late predictions join against it).
        self._measured: OrderedDict[tuple, object] = OrderedDict()
        self._errors: dict[str, deque[float]] = {}
        #: Monotone per-version join totals (windows are bounded; these
        #: are what progress is measured against).
        self._joins: dict[str, int] = {}
        self._samples: deque[FeedbackSample] = deque(maxlen=max(retain_samples, 1))
        self.predictions = 0
        self.measurements = 0
        self.joined = 0
        self.unmatched_measurements = 0
        self.dropped_pending = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def _join_locked(
        self, version: str, predicted, measured, request, shadow: bool
    ) -> None:
        error = prediction_error(predicted, measured)
        window = self._errors.get(version)
        if window is None:
            window = self._errors[version] = deque(maxlen=self.window)
        window.append(error)
        self._joins[version] = self._joins.get(version, 0) + 1
        self._samples.append(
            FeedbackSample(
                version=version,
                request=request,
                predicted=predicted,
                measured=measured,
                error=error,
                shadow=shadow,
            )
        )
        self.joined += 1

    def record_prediction(
        self,
        version: str,
        key: tuple,
        predicted,
        request: Request | None = None,
        shadow: bool = False,
    ) -> None:
        """Record one served prediction.

        Joins immediately when ``key`` already has a retained
        measurement (the shadow-scoring arrival order); otherwise pends
        (bounded per key and across keys) until one arrives.
        """
        with self._lock:
            self.predictions += 1
            measured = self._measured.get(key)
            if measured is not None:
                self._measured.move_to_end(key)
                self._join_locked(version, predicted, measured, request, shadow)
                return
            entries = self._pending.get(key)
            if entries is None:
                entries = self._pending[key] = []
            entries.append((version, predicted, request, shadow))
            if len(entries) > self._MAX_ENTRIES_PER_KEY:
                del entries[0]
                self.dropped_pending += 1
            self._pending.move_to_end(key)
            while len(self._pending) > self.max_pending:
                _, dropped = self._pending.popitem(last=False)
                self.dropped_pending += len(dropped)

    def record_measurement(self, key: tuple, measured) -> int:
        """Join ``measured`` against every prediction recorded under ``key``.

        The measurement is also retained (LRU-bounded), so predictions
        recorded *after* it — shadow scores land once response futures
        have already resolved — still join. Returns the number of
        predictions joined right now (0 when none were pending).
        """
        with self._lock:
            entries = self._pending.pop(key, None)
            self.measurements += 1
            self._measured[key] = measured
            self._measured.move_to_end(key)
            while len(self._measured) > self.max_pending:
                self._measured.popitem(last=False)
            if not entries:
                self.unmatched_measurements += 1
                return 0
            for version, predicted, request, shadow in entries:
                self._join_locked(version, predicted, measured, request, shadow)
            return len(entries)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def error_window(self, version: str | None) -> WindowSnapshot:
        """The version's current accuracy window (empty = all zeros)."""
        if version is None:
            return _EMPTY_WINDOW
        with self._lock:
            window = self._errors.get(version)
            total = self._joins.get(version, 0)
            if not window:
                return _EMPTY_WINDOW
            arr = np.asarray(window, dtype=np.float64)
        return WindowSnapshot(
            count=int(arr.size),
            mean_error=float(arr.mean()),
            max_error=float(arr.max()),
            total=total,
        )

    def reset_version(self, version: str) -> None:
        """Clear a version's error window and join total (a freshly
        staged checkpoint must be judged on its own traffic, not a
        previous rollout's)."""
        with self._lock:
            self._errors.pop(version, None)
            self._joins.pop(version, None)

    def samples(self) -> list[FeedbackSample]:
        """The joined-sample training buffer (newest last), by reference
        semantics: a copy of the deque's current contents."""
        with self._lock:
            return list(self._samples)

    def drain_samples(self) -> list[FeedbackSample]:
        """Take the training buffer, leaving it empty (one fine-tuning
        round consumes each observation once)."""
        with self._lock:
            samples = list(self._samples)
            self._samples.clear()
            return samples

    def register_into(self, registry) -> None:
        """Contribute the join-pipeline counters to a telemetry registry.

        Flat keys are prefixed ``feedback_`` (the per-version windows
        already reach the registry through the service's ``per_version``
        merge, so only the pipeline health counters are added here).
        """

        def _snapshot() -> dict:
            snap = self.snapshot()
            return {
                f"feedback_{key}": value
                for key, value in snap.items()
                if key != "versions"
            }

        registry.register_collector("feedback", _snapshot)
        registry.mark_counter(
            "feedback_predictions",
            "feedback_measurements",
            "feedback_joined",
            "feedback_unmatched_measurements",
            "feedback_dropped_pending",
        )

    def snapshot(self) -> dict:
        """Flat counters plus the per-version window summaries."""
        with self._lock:
            versions = {
                version: {
                    "feedback_count": float(len(window)),
                    "feedback_total": float(self._joins.get(version, 0)),
                    "feedback_mean_error": float(np.mean(window)) if window else 0.0,
                }
                for version, window in self._errors.items()
            }
            return {
                "predictions": float(self.predictions),
                "measurements": float(self.measurements),
                "joined": float(self.joined),
                "unmatched_measurements": float(self.unmatched_measurements),
                "dropped_pending": float(self.dropped_pending),
                "pending": float(len(self._pending)),
                "measured_retained": float(len(self._measured)),
                "samples_buffered": float(len(self._samples)),
                "versions": versions,
            }


def tile_measurement(simulator, kernel, tiles) -> np.ndarray:
    """Measure every candidate tile on the (simulated) hardware.

    The standard measurement half of the feedback loop for tile-score
    traffic: ``record_measurement(request_key(req), tile_measurement(...))``.
    """
    return np.asarray([simulator.run(kernel, tile) for tile in tiles], dtype=np.float64)


def is_tile_sample(sample: FeedbackSample) -> bool:
    """True when the sample joins tile scores with tile runtimes."""
    return isinstance(sample.request, TileScoresRequest)


def is_runtime_sample(sample: FeedbackSample) -> bool:
    """True when the sample joins one kernel-runtime prediction."""
    return isinstance(sample.request, KernelRuntimeRequest)
