"""Resilience primitives: typed faults, retries, breakers, degradation.

The serving contract this PR establishes: **every request resolves within
its deadline as exactly one of a correct answer, a typed error, or a
degraded-flagged analytical answer — never a hang.** This module holds
the building blocks the rest of the stack composes to honor it:

* typed serving faults (:class:`DeadlineExceeded`, :class:`Overloaded`,
  :class:`ConnectionLost`, :class:`WorkerFailure`,
  :class:`ServiceUnavailable`) with stable wire codes (the code strings
  themselves live in :mod:`.protocol` so the wire vocabulary has no
  dependency on this module);
* :class:`RetryPolicy` — client-side exponential backoff with
  *deterministic* jitter keyed by an idempotent request id
  (:func:`idempotency_key`), so a retry schedule is reproducible and two
  clients retrying the same content de-synchronize instead of
  thundering-herding;
* :class:`CircuitBreaker` — the per-shard consecutive-failure breaker
  (closed → open → half-open probe) the service consults before
  dispatching to a shard;
* :class:`CrashLoopBackoff` — exponential respawn suppression for a
  worker that dies on every boot, so the respawn path cannot spin hot;
* :class:`AnalyticalFallback` — graceful degradation: answers any
  request shape from the paper's analytical TPU model
  (:class:`~repro.tpu.analytical.AnalyticalModel`) when the learned path
  is unavailable, so tuners keep making progress through an outage.
  Degraded answers are tagged ``degraded=True`` on the wire and are never
  result-cached (an outage must not poison the cache with analytical
  values).
"""
from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..compiler.tiling import default_tile
from ..tpu.analytical import AnalyticalModel
from .protocol import (
    ERROR_DEADLINE_EXCEEDED,
    ERROR_DISCONNECTED,
    ERROR_OVERLOADED,
    ERROR_UNAVAILABLE,
    ERROR_WORKER_FAILURE,
    KernelRuntimeRequest,
    ProgramRuntimesRequest,
    Request,
    Response,
    TileScoresRequest,
)

#: The registry-version stamp of degraded responses: they were produced by
#: the analytical model, not by any published checkpoint.
ANALYTICAL_VERSION = "analytical"


# ---------------------------------------------------------------------- #
# typed serving faults
# ---------------------------------------------------------------------- #


class ServingFault(RuntimeError):
    """Base of every typed serving failure; ``code`` is its wire form."""

    code: str = ERROR_UNAVAILABLE


class DeadlineExceeded(ServingFault):
    """The request's deadline elapsed before an answer was produced."""

    code = ERROR_DEADLINE_EXCEEDED


class Overloaded(ServingFault):
    """Admission control shed the request: the scheduler backlog is at
    its bound and queueing further would only grow latency past every
    deadline anyway."""

    code = ERROR_OVERLOADED


class ConnectionLost(ServingFault):
    """The transport connection died mid-request (either side)."""

    code = ERROR_DISCONNECTED


class WorkerFailure(ServingFault):
    """Shard-worker infrastructure failed the request (died, hung past
    the dispatch timeout, or was unreachable) and no degraded answer was
    available."""

    code = ERROR_WORKER_FAILURE


class ServiceUnavailable(ServingFault):
    """The service cannot take or answer requests right now."""

    code = ERROR_UNAVAILABLE


_FAULT_TYPES: dict[str, type[ServingFault]] = {
    cls.code: cls
    for cls in (
        DeadlineExceeded,
        Overloaded,
        ConnectionLost,
        WorkerFailure,
        ServiceUnavailable,
    )
}


def fault_for(response: Response) -> ServingFault | None:
    """The typed exception a response's ``error_code`` maps to (or None).

    Unrecognized codes (a newer server) degrade to
    :class:`ServiceUnavailable` rather than an untyped error.
    """
    if response.error_code is None:
        return None
    cls = _FAULT_TYPES.get(response.error_code, ServiceUnavailable)
    return cls(response.error or response.error_code)


def raise_for(response: Response) -> Response:
    """Raise the typed fault carried by ``response``, if any."""
    fault = fault_for(response)
    if fault is not None:
        raise fault
    return response


# ---------------------------------------------------------------------- #
# retry policy
# ---------------------------------------------------------------------- #


def idempotency_key(request: Request) -> str:
    """A stable content-derived id for one logical request.

    Two submissions of the same query content share the key — it is what
    makes a retry *the same request* rather than a new one, and it seeds
    the deterministic retry jitter so equal-content clients back off on
    different schedules.
    """
    cache_key = getattr(request, "cache_key", lambda: None)()
    if cache_key is not None:
        material = repr(cache_key)
    else:
        material = f"{type(request).__name__}:{','.join(request.fingerprints())}"
    return hashlib.sha256(material.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry schedule: exponential backoff, deterministic jitter.

    Attributes:
        max_attempts: total tries including the first.
        base_backoff_s: backoff before the first retry (then doubled).
        max_backoff_s: cap on any single backoff.
        multiplier: geometric growth factor between retries.
        retryable_codes: wire error codes worth retrying — transient
            transport/capacity faults. Deadline expiry is deliberately
            not in the default set: the budget is already spent.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.02
    max_backoff_s: float = 1.0
    multiplier: float = 2.0
    retryable_codes: tuple[str, ...] = (
        ERROR_OVERLOADED,
        ERROR_DISCONNECTED,
        ERROR_UNAVAILABLE,
        ERROR_WORKER_FAILURE,
    )

    def backoff_s(self, retry: int, key: str) -> float:
        """Backoff before the ``retry``-th retry (0-based) of request ``key``.

        Jitter is deterministic — a hash of ``(key, retry)`` scales the
        exponential cap into ``[cap/2, cap)`` — so a retry schedule is
        exactly reproducible while distinct requests still spread out.
        """
        cap = min(
            self.base_backoff_s * self.multiplier**retry, self.max_backoff_s
        )
        digest = hashlib.sha256(f"{key}:{retry}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        return cap * (0.5 + 0.5 * unit)

    def retryable(self, code: str | None) -> bool:
        return code is not None and code in self.retryable_codes


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #


class CircuitBreaker:
    """Per-shard consecutive-failure circuit breaker (thread-safe).

    Closed: every dispatch allowed. ``failure_threshold`` consecutive
    failures open it; while open, dispatches are refused (the service
    degrades them) until ``reset_s`` has passed, after which exactly one
    *probe* dispatch is allowed through (half-open). A successful probe
    closes the breaker; a failed one reopens it for another ``reset_s``.

    Args:
        failure_threshold: consecutive failures that open the breaker.
        reset_s: open-state dwell before a half-open probe is allowed.
        clock: injectable time source (tests drive it manually).
        on_transition: optional ``fn(from_state, to_state)`` invoked
            *outside* the breaker lock on every state change (the ops
            journal hook — a callback that takes its own locks must not
            run under ours).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_s: float = 2.0,
        clock=time.monotonic,
        on_transition=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_s < 0:
            raise ValueError("reset_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_s = reset_s
        self.on_transition = on_transition
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive = 0
        self._opened_at: float | None = None
        self._probing = False
        self.opens = 0
        self.probes = 0
        self._open_seconds = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May the caller dispatch to this shard right now?

        While open, returns False until ``reset_s`` has dwelt, then True
        exactly once (the half-open probe); further calls return False
        until the probe reports back.
        """
        with self._lock:
            before = self._state
            if self._state == "closed":
                return True
            if self._state == "open":
                assert self._opened_at is not None
                if self._clock() - self._opened_at < self.reset_s:
                    return False
                self._state = "half-open"
                self._probing = False
            # half-open: admit a single probe.
            if self._probing:
                verdict = False
            else:
                self._probing = True
                self.probes += 1
                verdict = True
            after = self._state
        self._notify(before, after)
        return verdict

    def _notify(self, before: str, after: str) -> None:
        """Invoke ``on_transition`` when the state actually changed.

        Always called with the breaker lock released — the journal takes
        its own lock and does IO. A failing callback is swallowed:
        observability must never change breaker behavior.
        """
        if before == after or self.on_transition is None:
            return
        try:
            self.on_transition(before, after)
        except Exception:
            pass

    def record_success(self) -> None:
        """A dispatch succeeded: close (and settle open-time accounting)."""
        with self._lock:
            before = self._state
            if self._state != "closed" and self._opened_at is not None:
                self._open_seconds += self._clock() - self._opened_at
                self._opened_at = None
            self._state = "closed"
            self._consecutive = 0
            self._probing = False
        self._notify(before, "closed")

    def record_failure(self) -> None:
        """A dispatch failed: count it; open at the threshold or on a
        failed probe."""
        with self._lock:
            before = self._state
            self._consecutive += 1
            if self._state == "half-open" or (
                self._state == "closed"
                and self._consecutive >= self.failure_threshold
            ):
                if self._state != "open":
                    self.opens += 1
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False
            after = self._state
        self._notify(before, after)

    def open_seconds(self) -> float:
        """Cumulative seconds spent open/half-open (including a current
        open window) — the breaker-open visibility `metrics()` exposes."""
        with self._lock:
            total = self._open_seconds
            if self._opened_at is not None:
                total += self._clock() - self._opened_at
            return total

    #: Numeric encoding of breaker states for metrics exposition (a
    #: labeled gauge can be graphed/alerted on; the string cannot).
    _STATE_CODES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}

    def snapshot(self) -> dict:
        with self._lock:
            open_s = self._open_seconds
            if self._opened_at is not None:
                open_s += self._clock() - self._opened_at
            return {
                "state": self._state,
                "state_code": self._STATE_CODES.get(self._state, -1.0),
                "consecutive_failures": self._consecutive,
                "opens": self.opens,
                "probes": self.probes,
                "open_seconds": open_s,
            }


# ---------------------------------------------------------------------- #
# crash-loop backoff
# ---------------------------------------------------------------------- #


class CrashLoopBackoff:
    """Exponential respawn suppression for a crash-looping worker.

    The *first* failure is free — a lone worker death respawns
    immediately, preserving the executor's seamless single-kill recovery.
    From the second consecutive failure on, each one doubles the
    suppression window (capped); while the window is live,
    :meth:`remaining` is positive and the executor refuses to respawn —
    the shard fails fast (and the service degrades) instead of burning a
    core on spawn/crash cycles. One successful round-trip resets the
    backoff to zero.
    """

    def __init__(
        self,
        base_s: float = 0.05,
        max_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        self.base_s = base_s
        self.max_s = max_s
        self._clock = clock
        self._lock = threading.Lock()
        self.failures = 0
        self._until: float | None = None

    def record_failure(self) -> float:
        """Start/extend the suppression window; returns its length."""
        with self._lock:
            self.failures += 1
            if self.failures == 1:
                # One death is routine attrition, not a crash loop.
                self._until = None
                return 0.0
            window = min(
                self.base_s * (2.0 ** (self.failures - 2)), self.max_s
            )
            self._until = self._clock() + window
            return window

    def record_success(self) -> None:
        with self._lock:
            self.failures = 0
            self._until = None

    def remaining(self) -> float:
        """Seconds of suppression left (0 when a respawn is allowed)."""
        with self._lock:
            if self._until is None:
                return 0.0
            return max(0.0, self._until - self._clock())


# ---------------------------------------------------------------------- #
# graceful degradation
# ---------------------------------------------------------------------- #


class AnalyticalFallback:
    """Answer any request shape from the analytical TPU model.

    The degraded-path evaluator: no checkpoint, no worker, no state beyond
    the analytical model's own memo — it can answer while every learned
    replica is down. Values are honest analytical estimates (seconds), so
    lower-is-better tile ranking and program comparison keep working;
    absolute scale differs from the learned model, which is exactly why
    degraded responses are flagged and never cached.

    Raises ``ValueError`` from :meth:`answer` when a request cannot be
    answered analytically (e.g. no kernel with tile-size options) — the
    caller then falls back to a typed error instead.
    """

    def __init__(self, model: AnalyticalModel | None = None) -> None:
        self.model = model or AnalyticalModel()
        self._lock = threading.Lock()
        self.answers = 0
        self.failures = 0

    def answer(self, request: Request) -> np.ndarray | float:
        try:
            value = self._answer(request)
        except Exception:
            with self._lock:
                self.failures += 1
            raise
        with self._lock:
            self.answers += 1
        return value

    def _answer(self, request: Request) -> np.ndarray | float:
        if isinstance(request, TileScoresRequest):
            return np.asarray(
                [self.model.estimate(request.kernel, t) for t in request.tiles],
                dtype=np.float64,
            )
        if isinstance(request, KernelRuntimeRequest):
            kernel = request.kernel
            return float(self.model.estimate(kernel, default_tile(kernel)))
        if isinstance(request, ProgramRuntimesRequest):
            return np.asarray(
                [self._program(kernels) for kernels in request.programs],
                dtype=np.float64,
            )
        raise ValueError(
            f"no analytical answer for {type(request).__name__}"
        )

    def _program(self, kernels) -> float:
        total = 0.0
        answered = 0
        for kernel in kernels:
            if not kernel.has_tile_options():
                # Kernels the analytical model cannot price (no tile-size
                # options) contribute nothing; the estimate stays a valid
                # lower-is-better comparator as long as at least one
                # kernel was priced.
                continue
            total += self.model.estimate(kernel, default_tile(kernel))
            answered += 1
        if kernels and answered == 0:
            raise ValueError("no kernel in the program is analytically priceable")
        return total


__all__ = [
    "ANALYTICAL_VERSION",
    "AnalyticalFallback",
    "CircuitBreaker",
    "ConnectionLost",
    "CrashLoopBackoff",
    "DeadlineExceeded",
    "Overloaded",
    "RetryPolicy",
    "ServiceUnavailable",
    "ServingFault",
    "WorkerFailure",
    "fault_for",
    "idempotency_key",
    "raise_for",
]
