"""Read-only HTTP ops gateway: metrics exposition + trace lookup.

The first third of the ROADMAP's "multi-protocol edge gateway + live ops
console" item: a minimal stdlib ``http.server`` endpoint bound to one
:class:`~repro.serving.service.CostModelService`, serving the telemetry
registry and the tracer over plain HTTP so standard tooling (Prometheus,
``curl``, a browser) can watch a running service without linking against
it. Deliberately **read-only** — control verbs (drain, rollback, scale)
and runbook automation stay future work; this surface can be pointed at
a production service without handing out a control plane.

Endpoints:

* ``GET /healthz`` — liveness + the active checkpoint version, plus a
  ``status: ok | degraded | failing`` verdict folded from recent
  synthetic-probe results, open circuit breakers, and firing alerts
  (``failing`` answers 503 so a load balancer can act on it; the JSON
  stays backwards compatible).
* ``GET /metrics`` — the registry snapshot in Prometheus text
  exposition format; ``?format=json`` returns the same snapshot as one
  JSON document (nested dicts intact).
* ``GET /traces/recent`` — summaries of the newest retained traces
  (``?n=`` bounds the count, default 20).
* ``GET /traces/<trace_id>`` — one assembled trace tree as JSON;
  ``?format=text`` returns the ASCII rendering, ``?format=chrome`` the
  Chrome trace-event document (load it straight into ``chrome://tracing``
  or Perfetto).
* ``GET /profile`` — the continuous profiler's report: per-stage
  exemplar-linked histograms, flame-style call-path table, interval
  snapshots; ``?format=text`` for the ASCII table, ``?format=folded``
  for folded-stack lines (flamegraph tooling input).
* ``GET /alerts`` — the alert engine's board (firing/pending counts +
  per-rule state); ``?format=text`` for the ASCII board.
* ``GET /events/recent`` — the newest ops-journal events (``?n=``
  bounds the count, default 50).
* ``GET /probes`` — the synthetic prober's board: corpus size, route
  matrix coverage, per-route pass/fail, recent verdicts.
* ``GET /incidents`` — auto-generated incident report summaries;
  ``GET /incidents/<id>`` one full report (``?format=text`` for the
  ASCII rendering).

``?n=`` on the ``/recent`` endpoints is bounds-checked (an integer in
[1, 1000]); malformed or out-of-range values answer a typed ``400``
instead of a fixed-size dump.

Trace endpoints answer ``503`` when the service has no tracer attached
(tracing disabled is the zero-overhead default) and ``404`` for ids the
ring buffer no longer retains; ``/profile``, ``/alerts``,
``/events/recent``, ``/probes``, and ``/incidents`` answer ``503`` the
same way when their component is not attached.

The gateway itself is instrumented: its request counter, error counter,
latency histogram, and a per-endpoint access breakdown land in the same
registry it serves, so a scrape shows the cost of scraping.
"""
from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsGateway:
    """Serve one service's telemetry registry + tracer over HTTP.

    Args:
        service: the :class:`CostModelService` to expose. Its lazy
            ``telemetry`` registry is built on construction (the gateway
            exists to read it) and the gateway's own instruments are
            registered into it.
        host: bind address (default loopback — an ops surface should
            not listen on all interfaces unless asked to).
        port: bind port; 0 picks a free one (read :attr:`address`).

    The server runs on a daemon thread pool (one thread per in-flight
    request, stdlib ``ThreadingHTTPServer``); every handler only *reads*
    service state, so a slow scrape can never block the serving path.
    Context-manager friendly; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        registry = service.telemetry
        self._requests = registry.counter(
            "gateway_requests", help="HTTP requests the ops gateway served"
        )
        self._errors = registry.counter(
            "gateway_errors", help="gateway responses with status >= 400"
        )
        self._latency = registry.histogram(
            "gateway_latency_s", help="gateway request handling latency"
        )
        # Per-endpoint access counts, exposed as a labeled family
        # (``gateway_accesses{endpoint="..."}``) so gateway load is
        # attributable, not just a single total.
        self._accesses: dict[str, int] = {}
        self._access_lock = threading.Lock()
        registry.register_collector("gateway_accesses", self._access_snapshot)
        registry.mark_counter("gateway_accesses")
        gateway = self

        class _Handler(BaseHTTPRequestHandler):
            # Ops endpoints must not spam the service's stdout/stderr.
            def log_message(self, format, *args):  # noqa: A002
                pass

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                gateway._handle(self)

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self.address: tuple[str, int] = self._server.server_address[:2]
        self._closed = False
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="metrics-gateway",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    def _handle(self, handler: BaseHTTPRequestHandler) -> None:
        started = time.perf_counter()
        try:
            status = self._route(handler)
        except BrokenPipeError:
            status = 0  # peer went away mid-write; nothing to answer
        except Exception as exc:
            status = 500
            try:
                self._send(
                    handler, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                pass
        self._requests.inc()
        if status >= 400:
            self._errors.inc()
        self._latency.observe(time.perf_counter() - started)

    def _access_snapshot(self) -> dict:
        with self._access_lock:
            return {
                "gateway_accesses": {
                    endpoint: float(count)
                    for endpoint, count in self._accesses.items()
                }
            }

    #: Route families used as the access-counter label — a fixed
    #: vocabulary, so label cardinality stays bounded no matter what
    #: paths clients probe.
    _ENDPOINTS = (
        "healthz",
        "metrics",
        "traces",
        "profile",
        "alerts",
        "events",
        "probes",
        "incidents",
    )

    def _count_access(self, family: str) -> None:
        with self._access_lock:
            self._accesses[family] = self._accesses.get(family, 0) + 1

    #: Bounds for the ``?n=`` limit on the ``/recent`` endpoints — large
    #: enough for any console, small enough that a scrape can't ask the
    #: gateway to serialize an unbounded dump.
    _MAX_N = 1000

    @classmethod
    def _parse_n(cls, query: dict, default: int) -> tuple[int | None, str | None]:
        """Parse the ``?n=`` limit; ``(n, None)`` or ``(None, error)``."""
        raw = query.get("n", [str(default)])[0]
        try:
            n = int(raw)
        except ValueError:
            return None, f"n must be an integer, got {raw!r}"
        if not 1 <= n <= cls._MAX_N:
            return None, f"n must be in [1, {cls._MAX_N}], got {n}"
        return n, None

    def _health_verdict(self) -> tuple[str, dict]:
        """Fold probes, breakers, and alerts into ``ok|degraded|failing``.

        A failing probe route is *verified* breakage (a known answer came
        back wrong, or not at all) → ``failing``. Open breakers or firing
        alerts mean the service is coping but impaired → ``degraded``.
        Components that aren't attached just don't vote.
        """
        detail: dict = {}
        status = "ok"
        alerts = getattr(self.service, "alerts", None)
        if alerts is not None:
            firing = int(alerts.snapshot()["alerts_firing"])
            detail["alerts_firing"] = firing
            if firing:
                status = "degraded"
        try:
            board = self.service._collect_breakers()["breakers"]
        except Exception:
            board = {}
        open_breakers = sorted(
            shard
            for shard, snap in board.items()
            if snap.get("state") in ("open", "half-open")
        )
        detail["breakers_open"] = open_breakers
        if open_breakers:
            status = "degraded"
        prober = getattr(self.service, "prober", None)
        if prober is not None:
            health = prober.health()
            detail["probe_failing_routes"] = health["failing_routes"]
            detail["probes"] = health["probes"]
            if health["failing_routes"]:
                status = "failing"
        return status, detail

    def _route(self, handler: BaseHTTPRequestHandler) -> int:
        url = urlparse(handler.path)
        query = parse_qs(url.query)
        parts = [p for p in url.path.split("/") if p]
        family = parts[0] if parts else ""
        self._count_access(family if family in self._ENDPOINTS else "other")
        if url.path == "/healthz":
            status, detail = self._health_verdict()
            return self._send(
                handler,
                503 if status == "failing" else 200,
                {
                    "status": status,
                    "running": bool(self.service.is_running),
                    "active_version": self.service.registry.active_version,
                    "tracing": self.service.tracer is not None,
                    **detail,
                },
            )
        if url.path == "/metrics":
            registry = self.service.telemetry
            if query.get("format", [""])[0] == "json":
                return self._send_raw(
                    handler, 200, registry.json().encode(), "application/json"
                )
            return self._send_raw(
                handler,
                200,
                registry.prometheus().encode(),
                PROMETHEUS_CONTENT_TYPE,
            )
        if parts and parts[0] == "traces":
            tracer = self.service.tracer
            if tracer is None:
                return self._send(
                    handler, 503, {"error": "tracing is not enabled"}
                )
            if len(parts) == 2 and parts[1] == "recent":
                n, error = self._parse_n(query, default=20)
                if error is not None:
                    return self._send(handler, 400, {"error": error})
                return self._send(handler, 200, {"traces": tracer.recent(n)})
            if len(parts) == 2:
                trace_id = parts[1]
                fmt = query.get("format", [""])[0]
                if fmt == "text":
                    rendered = tracer.render(trace_id)
                    status = 404 if rendered.endswith("not retained") else 200
                    return self._send_raw(
                        handler,
                        status,
                        (rendered + "\n").encode(),
                        "text/plain; charset=utf-8",
                    )
                if fmt == "chrome":
                    document = tracer.chrome_trace(trace_id)
                    if document is None:
                        return self._send(
                            handler,
                            404,
                            {"error": f"trace {trace_id} not retained"},
                        )
                    return self._send(handler, 200, document)
                tree = tracer.trace(trace_id)
                if tree is None:
                    return self._send(
                        handler, 404, {"error": f"trace {trace_id} not retained"}
                    )
                return self._send(handler, 200, tree)
        if url.path == "/profile":
            profiler = getattr(self.service, "profiler", None)
            if profiler is None:
                return self._send(
                    handler, 503, {"error": "profiling is not enabled"}
                )
            fmt = query.get("format", [""])[0]
            if fmt == "text":
                return self._send_raw(
                    handler,
                    200,
                    (profiler.render() + "\n").encode(),
                    "text/plain; charset=utf-8",
                )
            if fmt == "folded":
                return self._send_raw(
                    handler,
                    200,
                    (profiler.flame_folded() + "\n").encode(),
                    "text/plain; charset=utf-8",
                )
            return self._send(handler, 200, profiler.profile())
        if url.path == "/alerts":
            alerts = getattr(self.service, "alerts", None)
            if alerts is None:
                return self._send(
                    handler, 503, {"error": "alerting is not enabled"}
                )
            if query.get("format", [""])[0] == "text":
                return self._send_raw(
                    handler,
                    200,
                    (alerts.render() + "\n").encode(),
                    "text/plain; charset=utf-8",
                )
            return self._send(handler, 200, alerts.alerts())
        if url.path == "/events/recent":
            journal = getattr(self.service, "journal", None)
            if journal is None:
                return self._send(
                    handler, 503, {"error": "ops journal is not enabled"}
                )
            n, error = self._parse_n(query, default=50)
            if error is not None:
                return self._send(handler, 400, {"error": error})
            return self._send(handler, 200, {"events": journal.recent(n)})
        if url.path == "/probes":
            prober = getattr(self.service, "prober", None)
            if prober is None:
                return self._send(
                    handler, 503, {"error": "synthetic probing is not enabled"}
                )
            return self._send(handler, 200, prober.board())
        if parts and parts[0] == "incidents":
            incidents = getattr(self.service, "incidents", None)
            if incidents is None:
                return self._send(
                    handler, 503, {"error": "incident reporting is not enabled"}
                )
            if len(parts) == 1:
                return self._send(
                    handler, 200, {"incidents": incidents.reports()}
                )
            if len(parts) == 2:
                incident_id = parts[1]
                if query.get("format", [""])[0] == "text":
                    rendered = incidents.render(incident_id)
                    status = 404 if rendered.endswith("unknown") else 200
                    return self._send_raw(
                        handler,
                        status,
                        (rendered + "\n").encode(),
                        "text/plain; charset=utf-8",
                    )
                report = incidents.report(incident_id)
                if report is None:
                    return self._send(
                        handler,
                        404,
                        {"error": f"incident {incident_id} not retained"},
                    )
                return self._send(handler, 200, report)
        return self._send(handler, 404, {"error": f"no route for {url.path}"})

    @staticmethod
    def _send(handler: BaseHTTPRequestHandler, status: int, payload: dict) -> int:
        body = json.dumps(payload, default=str).encode()
        return MetricsGateway._send_raw(
            handler, status, body, "application/json"
        )

    @staticmethod
    def _send_raw(
        handler: BaseHTTPRequestHandler,
        status: int,
        body: bytes,
        content_type: str,
    ) -> int:
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)
        return status

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Stop serving; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._thread.join(timeout=2)
        self._server.server_close()

    def __enter__(self) -> "MetricsGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["MetricsGateway", "PROMETHEUS_CONTENT_TYPE"]
