"""Replica pool: fingerprint-sharded evaluators over one checkpoint.

One checkpoint is served by N :class:`~repro.autotuner.LearnedEvaluator`
replicas. Requests are routed by kernel fingerprint (stable content hash),
so each replica's prediction memo and feature memo only ever see its own
shard of the kernel population — N replicas give N times the effective
memo capacity without duplication, the in-process analogue of
cache-affinity placement in a multi-node serving tier.

The expensive per-kernel *precomputes* (scaled features, normalized
adjacency operators) live in one :class:`~repro.data.batching.KernelCache`
shared by every replica: precomputes are read-mostly and identical across
replicas, so sharing them trades no correctness for memory.

A :class:`ResultCache` — fingerprint-keyed, LRU, shared across replicas
and versions — short-circuits repeated identical requests before they
reach any replica at all.
"""
from __future__ import annotations

import threading
from collections import OrderedDict

from ..autotuner.evaluators import LearnedEvaluator
from ..data.batching import KernelCache
from ..models.trainer import TrainResult


def shard_of(shard_key: str, num_shards: int) -> int:
    """Stable shard index for a routing key (a hex fingerprint digest).

    Kernel fingerprints are sha256 hex digests — uniformly distributed
    already, so a slice of the digest is a fair shard id, and (unlike
    ``hash()``) stable across processes and machines. Every execution
    backend routes through this one function, which is why a request
    lands on the same shard whether the shard is an in-process replica or
    a worker subprocess.
    """
    if num_shards <= 1 or not shard_key:
        return 0
    return int(shard_key[:8], 16) % num_shards


class ResultCache:
    """Thread-safe LRU cache of finished responses, keyed by request.

    Keys are ``(model_version, request.cache_key())`` so a hot swap never
    serves a stale checkpoint's result. Counters feed the serving metrics.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple | None):
        """The cached value, or ``None`` (uncacheable keys always miss)."""
        if key is None:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key: tuple | None, value) -> None:
        if key is None or self.max_entries <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class ReplicaPool:
    """N fingerprint-sharded evaluator replicas over one checkpoint.

    Args:
        result: the checkpoint to serve.
        version: registry version string (stamped on every response).
        replicas: shard count.
        max_cached_kernels: per-shard precompute/feature memo bound.
        share_kernel_cache: keep one :class:`KernelCache` for all replicas
            (the default — precomputes are identical across replicas).
            When sharing, the cache bound scales with the replica count so
            total capacity matches the unshared configuration.
    """

    def __init__(
        self,
        result: TrainResult,
        version: str,
        replicas: int = 1,
        max_cached_kernels: int = 1024,
        share_kernel_cache: bool = True,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.version = version
        self.result = result
        self.max_cached_kernels = max_cached_kernels
        self._shared_cache = None
        if share_kernel_cache:
            self._shared_cache = KernelCache(
                result.scalers,
                neighbor_cap=result.model.config.neighbor_cap,
                max_entries=replicas * max_cached_kernels,
            )
        self.replicas = [self._build_replica() for _ in range(replicas)]

    def _build_replica(self) -> LearnedEvaluator:
        return LearnedEvaluator(
            self.result.model,
            self.result.scalers,
            cache=True,
            max_cached_kernels=self.max_cached_kernels,
            batch_cache=self._shared_cache,
        )

    def resize(self, replicas: int) -> None:
        """Grow or shrink the pool to ``replicas`` shards in place.

        The replica-autoscaling hook: new replicas share the model and
        (when sharing) the kernel cache, whose bound rescales with the
        pool so total precompute capacity keeps matching the unshared
        configuration; shrinking simply drops the tail replicas (their
        private memos with them). Callers must not run commands
        concurrently with a resize — the serving layer serializes both
        under its execution lock.
        """
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if replicas < len(self.replicas):
            del self.replicas[replicas:]
        else:
            while len(self.replicas) < replicas:
                self.replicas.append(self._build_replica())
        if self._shared_cache is not None:
            self._shared_cache.max_entries = replicas * self.max_cached_kernels

    def __len__(self) -> int:
        return len(self.replicas)

    def route(self, shard_key: str) -> LearnedEvaluator:
        """The replica owning ``shard_key`` (stable fingerprint hash)."""
        return self.replicas[shard_of(shard_key, len(self.replicas))]

    def stats(self) -> dict[str, int]:
        """Summed evaluator cache counters across replicas.

        A shared :class:`KernelCache` is counted once, not per replica.
        """
        total: dict[str, int] = {}
        seen_caches: set[int] = set()
        for evaluator in self.replicas:
            for key, value in evaluator.stats().items():
                if not key.startswith("batch_"):
                    total[key] = total.get(key, 0) + value
            cache = evaluator.batch_cache
            if id(cache) not in seen_caches:
                seen_caches.add(id(cache))
                for key, value in cache.stats().items():
                    total[f"batch_{key}"] = total.get(f"batch_{key}", 0) + value
        return total
