"""Automated incident reports from alert firings.

A firing alert (PR 8) tells an operator *that* something broke; finding
*what* still meant hand-correlating ``/events/recent``, ``/traces/<id>``,
``/profile``, and per-shard stats. This module automates that first
fifteen minutes of triage: an :class:`IncidentReporter` hooks the
:class:`~repro.serving.alerts.AlertEngine`'s transition observers and,
on every ``→ firing`` transition, self-assembles a bounded,
trace-correlated **incident report**:

* the breached rule, its transition, and its recent evaluated series;
* the :class:`~repro.serving.journal.OpsJournal` window around the
  first breach (probe failures, worker respawns, registry swaps,
  breaker transitions — the lifecycle events a human would grep for);
* the worst per-stage trace exemplars from the continuous profiler;
* per-shard metric z-scores (which shard is the outlier, numerically);
* recent synthetic-probe verdicts and failing routes (PR 10's prober);

reduced to a **ranked suspected-cause list** — e.g. *"shard 2 probe
known-answer failures (known_answer_mismatch) began at journal seq 412,
0.8 s after worker.respawn"*. Reports are journaled (``incident.open``
summary + full ``incident.report`` payload — a replayed journal carries
its own post-mortems) and served read-only from the gateway at
``/incidents`` and ``/incidents/<id>``.

Everything here is best-effort and bounded: a missing component
(no profiler, no prober, no journal) just leaves its section empty, an
exception while assembling evidence degrades the report rather than the
alert path, and the report ring keeps at most ``max_reports`` entries.
The reporter follows the stack's ``None``-hook discipline — a service
without one behaves exactly as before.
"""
from __future__ import annotations

import threading
import time
from collections import deque
from math import sqrt

__all__ = ["IncidentReporter"]

#: Journal kinds that describe *operator-visible state changes* — the
#: events worth blaming. Probe failures are handled separately (they
#: carry the breach marker); alert transitions are the symptom, never
#: the cause.
_LIFECYCLE_PREFIXES = (
    "worker.",
    "registry.",
    "rollout.",
    "placement.",
    "breaker.",
    "service.",
)


def _shard_zscores(per_shard: dict) -> dict:
    """Population z-score of each shard's metrics against the fleet.

    ``per_shard`` is :meth:`ServingStats.shard_snapshot` output. A
    metric with zero spread across shards yields no z-scores (nothing
    is an outlier of a constant).
    """
    metrics = ("requests", "errors", "latency_p99_s", "latency_max_s")
    shards = sorted(per_shard)
    out: dict[str, dict[str, float]] = {shard: {} for shard in shards}
    if len(shards) < 2:
        return out
    for metric in metrics:
        values = [float(per_shard[s].get(metric, 0.0)) for s in shards]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        std = sqrt(var)
        if std <= 0.0:
            continue
        for shard, value in zip(shards, values):
            out[shard][metric] = (value - mean) / std
    return out


class IncidentReporter:
    """Turns alert firings into ranked, self-contained incident reports.

    Args:
        max_reports: bound on the retained report ring.
        journal_window: how many journal events around the first breach
            each report captures.
        clock: injectable time source (report timestamps only — the
            evidence carries its own).

    Wire-up (either order works; ``service.attach_incidents`` does both):
    :meth:`bind` a service for its journal/stats/profiler/prober, then
    :meth:`observe` an alert engine to hook its transition stream.
    Reports can also be forced for drills via :meth:`open_incident`.
    """

    def __init__(
        self,
        max_reports: int = 32,
        journal_window: int = 40,
        clock=time.time,
    ) -> None:
        if max_reports < 1:
            raise ValueError("max_reports must be >= 1")
        self.journal_window = journal_window
        self._clock = clock
        self._service = None
        self._lock = threading.Lock()
        self._reports: deque[dict] = deque(maxlen=max_reports)
        self._counter = 0
        self.opened = 0

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def bind(self, service) -> None:
        """Bind to a service (``service.attach_incidents`` calls this)."""
        self._service = service

    def observe(self, engine) -> None:
        """Hook this reporter onto an alert engine's transition stream."""
        if self.on_transition not in engine.observers:
            engine.observers.append(self.on_transition)
        self._engine = engine

    def on_transition(self, move: dict) -> None:
        """Alert-engine observer: a ``→ firing`` move opens an incident."""
        if move.get("to") == "firing":
            self.open_incident(move)

    # ------------------------------------------------------------------ #
    # report assembly
    # ------------------------------------------------------------------ #

    def open_incident(self, move: dict) -> dict:
        """Assemble, retain, and journal a report for ``move``."""
        with self._lock:
            self._counter += 1
            incident_id = f"inc-{self._counter}"
        report = {
            "id": incident_id,
            "ts": self._clock(),
            "rule": dict(move),
            "series": self._gather(self._rule_series, move),
            "probes": self._gather(self._probe_evidence),
            "journal_window": self._gather(self._journal_evidence),
            "profile": self._gather(self._profile_evidence),
            "shard_zscores": self._gather(self._zscore_evidence),
        }
        report["causes"] = self._rank_causes(report)
        with self._lock:
            self._reports.append(report)
            self.opened += 1
        self._journal_report(report)
        return report

    @staticmethod
    def _gather(fn, *args):
        """Evidence is best-effort: a broken section degrades the report,
        never the alert path that triggered it."""
        try:
            return fn(*args)
        except Exception as exc:
            return {"error": f"{type(exc).__name__}: {exc}"}

    def _rule_series(self, move: dict) -> list[dict]:
        engine = getattr(self, "_engine", None)
        if engine is None:
            return []
        return engine.series(move["name"])

    def _probe_evidence(self) -> dict:
        prober = getattr(self._service, "prober", None) if self._service else None
        if prober is None:
            return {}
        return {
            "failing_routes": prober.failing_routes(),
            "recent": prober.recent(10),
        }

    def _journal_evidence(self) -> list[dict]:
        journal = getattr(self._service, "journal", None) if self._service else None
        if journal is None:
            return []
        # Newest-first from the in-memory tail; the report stores it
        # oldest-first, the way a post-mortem reads.
        return list(reversed(journal.recent(self.journal_window)))

    def _profile_evidence(self) -> dict:
        profiler = getattr(self._service, "profiler", None) if self._service else None
        if profiler is None:
            return {}
        stages = profiler.profile().get("stages", {})
        return {
            stage: {
                "count": entry.get("count"),
                "max_s": entry.get("max_s"),
                "worst_exemplar": entry.get("worst_exemplar"),
            }
            for stage, entry in stages.items()
        }

    def _zscore_evidence(self) -> dict:
        stats = getattr(self._service, "stats", None) if self._service else None
        if stats is None:
            return {}
        return _shard_zscores(stats.shard_snapshot())

    # ------------------------------------------------------------------ #
    # cause ranking
    # ------------------------------------------------------------------ #

    def _rank_causes(self, report: dict) -> list[dict]:
        """Reduce the evidence to ranked suspected causes.

        Heuristics, strongest first: a failing probe route is *verified*
        breakage (known answer, known route); a per-shard error z-score
        outlier is strong circumstantial evidence; an open breaker and a
        recent lifecycle event are context; the breached rule itself is
        the floor. Scores are comparable across reports, not
        probabilities.
        """
        causes: list[dict] = []
        causes += self._probe_causes(report)
        causes += self._zscore_causes(report)
        causes += self._breaker_causes()
        causes += self._lifecycle_causes(report)
        rule = report["rule"]
        causes.append(
            {
                "score": 10,
                "kind": "rule_breach",
                "cause": (
                    f"alert rule {rule.get('name')!r} breached "
                    f"(value={rule.get('value')}); no stronger signal "
                    "isolated a component"
                ),
                "evidence": {"rule": rule.get("name")},
            }
        )
        causes.sort(key=lambda c: -c["score"])
        for rank, cause in enumerate(causes, start=1):
            cause["rank"] = rank
        return causes

    def _probe_causes(self, report: dict) -> list[dict]:
        probes = report.get("probes") or {}
        failing = probes.get("failing_routes") or {}
        events = report.get("journal_window")
        events = events if isinstance(events, list) else []
        causes = []
        for route, stats in failing.items():
            parts = route.split(":")
            shard = parts[1] if len(parts) == 3 else "?"
            seq = stats.get("first_failure_seq")
            reason = self._route_reason(probes, route)
            text = f"shard {shard} probe failures ({reason}) on route {route}"
            if seq is not None:
                text += f" began at journal seq {seq}"
                culprit = self._preceding_lifecycle_event(events, seq)
                if culprit is not None:
                    dt = None
                    ts = stats.get("first_failure_ts")
                    if ts is not None and culprit.get("ts") is not None:
                        dt = max(ts - culprit["ts"], 0.0)
                    after = f"{dt:.1f} s after " if dt is not None else "after "
                    text += f", {after}{culprit['kind']} (seq {culprit.get('seq')})"
            causes.append(
                {
                    "score": 100,
                    "kind": "probe_failure",
                    "cause": text,
                    "evidence": {
                        "route": route,
                        "shard": shard,
                        "reason": reason,
                        "first_failure_seq": seq,
                        "failures": stats.get("failures"),
                    },
                }
            )
        return causes

    @staticmethod
    def _route_reason(probes: dict, route: str) -> str:
        for verdict in probes.get("recent") or []:
            if verdict.get("route") == route and verdict.get("outcome") == "fail":
                return verdict.get("reason") or "unknown"
        return "unknown"

    @staticmethod
    def _preceding_lifecycle_event(events: list, seq: int) -> dict | None:
        """The nearest lifecycle event strictly before journal ``seq`` —
        the thing that most plausibly *caused* what broke at ``seq``."""
        best = None
        for entry in events:
            entry_seq = entry.get("seq")
            if entry_seq is None or entry_seq >= seq:
                continue
            kind = entry.get("kind", "")
            if not kind.startswith(_LIFECYCLE_PREFIXES):
                continue
            if kind.startswith(("service.start", "service.telemetry")):
                continue  # boot noise, present in every journal
            if best is None or entry_seq > best.get("seq", -1):
                best = entry
        return best

    def _zscore_causes(self, report: dict) -> list[dict]:
        zscores = report.get("shard_zscores")
        if not isinstance(zscores, dict):
            return []
        causes = []
        for shard, metrics in zscores.items():
            if not isinstance(metrics, dict):
                continue
            z_err = metrics.get("errors", 0.0)
            z_lat = metrics.get("latency_p99_s", 0.0)
            if z_err >= 1.0:
                causes.append(
                    {
                        "score": 70,
                        "kind": "shard_error_outlier",
                        "cause": (
                            f"shard {shard} error count is the fleet outlier "
                            f"(z={z_err:.2f})"
                        ),
                        "evidence": {"shard": shard, "z_errors": z_err},
                    }
                )
            elif z_lat >= 2.0:
                causes.append(
                    {
                        "score": 40,
                        "kind": "shard_latency_outlier",
                        "cause": (
                            f"shard {shard} p99 latency is the fleet outlier "
                            f"(z={z_lat:.2f})"
                        ),
                        "evidence": {"shard": shard, "z_latency_p99": z_lat},
                    }
                )
        return causes

    def _breaker_causes(self) -> list[dict]:
        service = self._service
        if service is None:
            return []
        try:
            board = service._collect_breakers()["breakers"]
        except Exception:
            return []
        causes = []
        for shard, snap in board.items():
            if snap.get("state") in ("open", "half-open"):
                causes.append(
                    {
                        "score": 50,
                        "kind": "breaker_open",
                        "cause": (
                            f"shard {shard} circuit breaker is "
                            f"{snap.get('state')} "
                            f"({snap.get('consecutive_failures')} consecutive "
                            "failures)"
                        ),
                        "evidence": {"shard": shard, **snap},
                    }
                )
        return causes

    def _lifecycle_causes(self, report: dict) -> list[dict]:
        events = report.get("journal_window")
        if not isinstance(events, list):
            return []
        recent = [
            entry
            for entry in events
            if entry.get("kind", "").startswith(_LIFECYCLE_PREFIXES)
            and not entry.get("kind", "").startswith(
                ("service.start", "service.telemetry")
            )
        ]
        if not recent:
            return []
        last = recent[-1]
        return [
            {
                "score": 30,
                "kind": "recent_lifecycle_event",
                "cause": (
                    f"most recent lifecycle event before firing: "
                    f"{last.get('kind')} (seq {last.get('seq')})"
                ),
                "evidence": {k: last.get(k) for k in ("kind", "seq", "ts")},
            }
        ]

    # ------------------------------------------------------------------ #
    # journaling
    # ------------------------------------------------------------------ #

    def _journal_report(self, report: dict) -> None:
        journal = getattr(self._service, "journal", None) if self._service else None
        if journal is None:
            return
        top = report["causes"][0] if report["causes"] else None
        try:
            journal.record(
                "incident.open",
                trace_id=report["rule"].get("trace_id"),
                id=report["id"],
                rule=report["rule"].get("name"),
                severity=report["rule"].get("severity"),
                top_cause=top["cause"] if top else None,
                causes=len(report["causes"]),
            )
            # The full payload too: a replayed journal carries its own
            # post-mortems (reports are bounded, journals rotate).
            journal.record(
                "incident.report",
                trace_id=report["rule"].get("trace_id"),
                **{k: v for k, v in report.items()},
            )
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # readout
    # ------------------------------------------------------------------ #

    def reports(self) -> list[dict]:
        """Report summaries, newest first (the gateway's ``/incidents``)."""
        with self._lock:
            items = list(self._reports)
        items.reverse()
        return [
            {
                "id": r["id"],
                "ts": r["ts"],
                "rule": r["rule"].get("name"),
                "severity": r["rule"].get("severity"),
                "top_cause": r["causes"][0]["cause"] if r["causes"] else None,
                "causes": len(r["causes"]),
            }
            for r in items
        ]

    def report(self, incident_id: str) -> dict | None:
        """One full report by id (``/incidents/<id>``), or ``None``."""
        with self._lock:
            for entry in self._reports:
                if entry["id"] == incident_id:
                    return entry
        return None

    def render(self, incident_id: str) -> str:
        """ASCII rendering of one report (ops-console view)."""
        report = self.report(incident_id)
        if report is None:
            return f"incident {incident_id}: unknown"
        rule = report["rule"]
        lines = [
            f"incident {report['id']} — rule {rule.get('name')!r} "
            f"[{rule.get('severity')}] value={rule.get('value')}",
            "suspected causes:",
        ]
        for cause in report["causes"]:
            lines.append(
                f"  {cause['rank']}. (score {cause['score']}) {cause['cause']}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Incident accounting for the metrics registry."""
        with self._lock:
            return {
                "incidents_opened": float(self.opened),
                "incidents_retained": float(len(self._reports)),
            }

    def register_into(self, registry) -> None:
        """Contribute incident accounting to a telemetry registry."""
        registry.register_collector("incidents", self.snapshot)
        registry.mark_counter("incidents_opened")
