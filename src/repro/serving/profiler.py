"""Continuous pipeline profiler: per-stage wall-time attribution.

Traces (PR 7) answer *"what happened to request X"*; this module answers
the aggregate question — *"where does wall-time go, per pipeline stage,
right now and over the last N intervals"* — continuously, in production,
at a cost low enough to leave on.

The serving pipeline has a fixed stage vocabulary:

========== ==========================================================
stage      measured at
========== ==========================================================
queue.wait enqueue → the batch cut that includes the request
batch.cut  the scheduler's cut decision (age of the oldest pending)
compose    feature extraction / command building for one batch
forward    executor round-trip for one version group
serialize  result resolution + per-request response fan-out
========== ==========================================================

Each stage feeds a cumulative-bucket histogram (Prometheus semantics,
same shape as :class:`~repro.serving.telemetry.Histogram`) that is
additionally **exemplar-linked**: alongside the aggregate it keeps the
trace id of the most recent sample and of the worst (max-duration)
sample, so a spike in ``/profile`` jumps straight to a concrete
``/traces/<id>`` tree. Samples also aggregate into a **flame-style
call-path table** (folded-stack form, ``request;forward;worker``-like
paths → total seconds) and into a bounded ring of **periodic interval
snapshots** — the "what changed in the last minute" view.

Overhead discipline:

* Components hold ``profiler = None`` by default; every hook site is a
  single ``is not None`` check, so the unprofiled stack is bitwise
  identical to a build without this module (the fault-injector rule).
* The record path is a deterministic 1-in-``sample_every`` counter
  stride followed by a handful of dict updates under one lock — no
  allocation beyond the exemplar string, no syscalls, no clock reads
  beyond the one the caller already made to time the stage.
"""
from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import OrderedDict, deque

__all__ = ["ContinuousProfiler", "STAGES"]

#: The pipeline stage vocabulary (hook sites document themselves against
#: this). Unknown stages are accepted — the vocabulary is a convention,
#: not a schema — but these render first, in pipeline order.
STAGES = ("queue.wait", "batch.cut", "compose", "forward", "serialize")

#: Stage-duration buckets, in seconds. Finer than the latency defaults at
#: the microsecond end: individual stages (a batch cut, a serialize pass)
#: run far below a full request's latency.
STAGE_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Hot-path shortcut: the default flame path per known stage, so the
#: common record_stage call doesn't build an f-string per sample.
_DEFAULT_PATHS = {stage: f"request;{stage}" for stage in STAGES}


class _StageStats:
    """One stage's running aggregate: cumulative buckets + exemplars."""

    __slots__ = (
        "count", "total_s", "max_s", "counts",
        "last_trace_id", "max_trace_id",
    )

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.counts = [0] * len(STAGE_BUCKETS)
        self.last_trace_id: str | None = None
        self.max_trace_id: str | None = None

    def observe(self, duration_s: float, trace_id: str | None) -> None:
        self.count += 1
        self.total_s += duration_s
        if trace_id is not None:
            self.last_trace_id = trace_id
        if duration_s >= self.max_s:
            self.max_s = duration_s
            if trace_id is not None:
                self.max_trace_id = trace_id
        # counts is stored non-cumulative (one increment per observe);
        # to_dict() exposes the running-sum cumulative view.
        idx = bisect_left(STAGE_BUCKETS, duration_s)
        if idx < len(self.counts):
            self.counts[idx] += 1

    def to_dict(self) -> dict:
        mean = self.total_s / self.count if self.count else 0.0
        buckets = {}
        running = 0
        for i, bound in enumerate(STAGE_BUCKETS):
            running += self.counts[i]
            buckets[str(bound)] = float(running)
        return {
            "count": float(self.count),
            "sum": self.total_s,
            "mean_s": mean,
            "max_s": self.max_s,
            "buckets": buckets,
            "exemplar": self.last_trace_id,
            "worst_exemplar": self.max_trace_id,
        }


class ContinuousProfiler:
    """Low-overhead continuous profiler over the pipeline stage vocabulary.

    Args:
        sample_every: deterministic counter stride — record every N-th
            sample per stage-independent global counter (1 = record all,
            the default; the per-sample cost is a few dict updates, so
            full sampling is the intended production setting and the
            stride exists for extreme-throughput deployments).
        snapshot_interval_s: push an aggregated interval snapshot (per
            stage count/seconds deltas) into the ring when this much
            time has passed since the last one. Checked on the record
            path — no background thread.
        max_snapshots: ring bound on retained interval snapshots.
        clock: wall-clock source (injectable for deterministic tests);
            used for interval pacing and snapshot timestamps only —
            stage durations are timed by the caller.

    Thread-safe; shared by the scheduler core and executor result path
    of one service, like the tracer.
    """

    def __init__(
        self,
        sample_every: int = 1,
        snapshot_interval_s: float = 30.0,
        max_snapshots: int = 60,
        clock=time.time,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if snapshot_interval_s <= 0:
            raise ValueError("snapshot_interval_s must be > 0")
        if max_snapshots < 1:
            raise ValueError("max_snapshots must be >= 1")
        self.sample_every = sample_every
        self.snapshot_interval_s = snapshot_interval_s
        self._clock = clock
        self._lock = threading.Lock()
        self._stages: "OrderedDict[str, _StageStats]" = OrderedDict(
            (stage, _StageStats()) for stage in STAGES
        )
        self._paths: "OrderedDict[str, tuple[int, float]]" = OrderedDict()
        self._snapshots: deque[dict] = deque(maxlen=max_snapshots)
        self._interval_start = clock()
        self._interval_counts: dict[str, int] = {}
        self._interval_seconds: dict[str, float] = {}
        self._n = 0
        self.samples_recorded = 0
        self.samples_skipped = 0

    # ------------------------------------------------------------------ #
    # record path (the hot path — keep it boring)
    # ------------------------------------------------------------------ #

    def record_stage(
        self,
        stage: str,
        duration_s: float,
        trace_id: str | None = None,
        path: str | None = None,
    ) -> None:
        """Attribute ``duration_s`` of wall-time to ``stage``.

        ``trace_id`` (when the sample belongs to a traced request) links
        the aggregate back to a concrete trace as an exemplar. ``path``
        overrides the flame-table call path (folded-stack form,
        ``;``-separated); it defaults to ``request;<stage>``.
        """
        if duration_s < 0.0:
            duration_s = 0.0
        with self._lock:
            self._n += 1
            if self.sample_every > 1 and self._n % self.sample_every:
                self.samples_skipped += 1
                return
            self.samples_recorded += 1
            stats = self._stages.get(stage)
            if stats is None:
                stats = self._stages[stage] = _StageStats()
            stats.observe(duration_s, trace_id)
            if path is not None:
                key = path
            else:
                key = _DEFAULT_PATHS.get(stage)
                if key is None:
                    key = f"request;{stage}"
            count, seconds = self._paths.get(key, (0, 0.0))
            self._paths[key] = (count + 1, seconds + duration_s)
            self._interval_counts[stage] = self._interval_counts.get(stage, 0) + 1
            self._interval_seconds[stage] = (
                self._interval_seconds.get(stage, 0.0) + duration_s
            )
            now = self._clock()
            if now - self._interval_start >= self.snapshot_interval_s:
                self._roll_interval_locked(now)

    def _roll_interval_locked(self, now: float) -> None:
        self._snapshots.append(
            {
                "start": self._interval_start,
                "end": now,
                "stages": {
                    stage: {
                        "count": float(self._interval_counts.get(stage, 0)),
                        "seconds": self._interval_seconds.get(stage, 0.0),
                    }
                    for stage in self._interval_counts
                },
            }
        )
        self._interval_start = now
        self._interval_counts = {}
        self._interval_seconds = {}

    # ------------------------------------------------------------------ #
    # readout
    # ------------------------------------------------------------------ #

    def profile(self) -> dict:
        """The full profile report (the gateway's ``/profile`` payload):
        per-stage exemplar-linked histograms, the flame-style call-path
        table (sorted by total seconds, descending), and the retained
        interval snapshots (oldest first)."""
        with self._lock:
            stages = {
                stage: stats.to_dict()
                for stage, stats in self._stages.items()
                if stats.count
            }
            paths = sorted(
                (
                    {"path": key, "count": count, "seconds": seconds}
                    for key, (count, seconds) in self._paths.items()
                ),
                key=lambda row: row["seconds"],
                reverse=True,
            )
            intervals = list(self._snapshots)
            recorded = self.samples_recorded
            skipped = self.samples_skipped
        total = sum(entry["sum"] for entry in stages.values())
        for entry in stages.values():
            entry["fraction"] = entry["sum"] / total if total > 0 else 0.0
        return {
            "sample_every": self.sample_every,
            "samples_recorded": recorded,
            "samples_skipped": skipped,
            "total_seconds": total,
            "stages": stages,
            "flame": paths,
            "intervals": intervals,
        }

    def flame_folded(self) -> str:
        """The call-path table in Brendan-Gregg folded-stack text form
        (``path count seconds`` per line) — pasteable into flamegraph
        tooling."""
        report = self.profile()
        return "\n".join(
            f"{row['path']} {row['count']} {row['seconds']:.6f}"
            for row in report["flame"]
        )

    def render(self) -> str:
        """ASCII profile table — the ops-console view (``/profile`` text
        format)."""
        report = self.profile()
        lines = [
            f"profile: {report['samples_recorded']} samples "
            f"(1 in {report['sample_every']}), "
            f"{report['total_seconds'] * 1e3:.2f} ms attributed"
        ]
        order = {stage: i for i, stage in enumerate(STAGES)}
        for stage, entry in sorted(
            report["stages"].items(),
            key=lambda kv: order.get(kv[0], len(STAGES)),
        ):
            mean_ms = entry["mean_s"] * 1e3
            exemplar = entry["worst_exemplar"] or entry["exemplar"] or "-"
            lines.append(
                f"  {stage:<12} {entry['fraction'] * 100:5.1f}%  "
                f"n={int(entry['count']):<7} mean={mean_ms:8.3f}ms "
                f"max={entry['max_s'] * 1e3:8.3f}ms  exemplar={exemplar}"
            )
        if report["flame"]:
            lines.append("call paths:")
            for row in report["flame"]:
                lines.append(
                    f"  {row['path']:<28} n={row['count']:<7} "
                    f"{row['seconds'] * 1e3:.2f}ms"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Profiler accounting + per-stage totals for the metrics
        registry (the full exemplar/flame report stays on ``/profile`` —
        a scrape should not pay for it)."""
        with self._lock:
            per_stage = {
                stage: {
                    "count": float(stats.count),
                    "seconds": stats.total_s,
                }
                for stage, stats in self._stages.items()
                if stats.count
            }
            return {
                "profiler_samples": float(self.samples_recorded),
                "profiler_samples_skipped": float(self.samples_skipped),
                "profiler_stage": per_stage,
            }

    def register_into(self, registry) -> None:
        """Contribute profiler accounting to a telemetry registry."""
        registry.register_collector("profiler", self.snapshot)
        registry.mark_counter("profiler_samples", "profiler_samples_skipped")
