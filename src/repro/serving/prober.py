"""Synthetic probing: known-answer verification of every live route.

Passive observability (PR 7/8) can only describe traffic that already
happened; a silently-corrupt checkpoint on one shard or a dead route is
discovered by the first *real* request that hits it. Production
detectors close this gap with continuous known-source calibration
injections — signals with a known answer, driven through every channel
of the live system, verified on the way out (cf. the LZ calibration
systems, arXiv:2406.12874). This module is that pattern for the
cost-model service.

A :class:`SyntheticProber` holds a small **golden-kernel corpus**: real
kernels with fixed candidate tiles whose reference scores are computed
once per live registry version against a direct
:class:`~repro.autotuner.LearnedEvaluator` built from the version's own
sealed blob — at equal batch shape, so a healthy route answers
**bitwise-identically**. Each sweep drives one probe per corpus entry
through every registered frontend transport; the probe rides the
ordinary wire as a backwards-compatible ``synthetic=True`` tag, so the
scheduler coalesces it like business traffic while the service excludes
it from business stats, the SLO window, feedback joins, and the result
cache (see ``protocol.py`` / ``service.py``).

The **route matrix** is frontend kind × executor shard × live registry
version (active *and* staged, through the existing rollout chooser —
the prober never forces routing, it predicts the chooser's choice and
verifies whichever version actually served). Verification is
known-answer: bitwise at equal batch shape, a tight ``allclose`` when
coalescing/fusion changed the batch shape (float32 BLAS rounding), and
a typed-error or ``degraded=True`` outcome is recorded as a **route
failure** — an outage the analytical fallback papers over for clients
is exactly what a probe must still catch.

Probe verdicts land in their own ``prober_*`` telemetry family
(labeled per-route members), failures are journaled (``probe.failure``
with the journal seq the incident reporter correlates on), and the
whole prober follows the stack's ``None``-hook discipline: a service
without one is bitwise-identical to the pre-prober stack.
"""
from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from ..autotuner.evaluators import LearnedEvaluator
from ..compiler.kernels import Kernel
from ..compiler.tiling import TileConfig
from .protocol import TileScoresRequest

__all__ = ["GoldenProbe", "SyntheticProber"]


@dataclass(frozen=True)
class GoldenProbe:
    """One corpus entry: a kernel plus the fixed candidate tiles to rank.

    The tiles are part of the identity — the reference is computed for
    exactly this (kernel, tiles) pair at exactly this batch shape.
    """

    kernel: Kernel
    tiles: tuple[TileConfig, ...]

    def __post_init__(self) -> None:
        if not self.tiles:
            raise ValueError("a golden probe needs at least one tile")


class SyntheticProber:
    """Known-answer prober over a service's live route matrix.

    Args:
        corpus: golden probes (``GoldenProbe`` or bare ``(kernel,
            tiles)`` pairs). Pick kernels whose fingerprints cover every
            executor shard — :meth:`coverage` reports gaps after
            :meth:`bind`.
        interval_s: sweep cadence for :meth:`start` / :meth:`maybe_sweep`.
        timeout_s: per-probe response wait.
        probe_deadline_s: optional deadline stamped on probe requests.
        rtol / atol: the ``allclose`` tolerance used when coalescing or
            fusion changed the probe's batch shape (float32 BLAS
            rounding); a regressed or corrupt checkpoint moves scores
            orders of magnitude past it.
        history: bound on the retained verdict ring (:meth:`recent`).
        clock: injectable wall clock — the schedule and every verdict
            timestamp are deterministic under a fake clock.
        journal: optional ops journal; defaults to the bound service's.

    The prober is *pulled* (call :meth:`sweep` from an ops loop) or
    self-scheduled (:meth:`start` a daemon thread at ``interval_s``).
    """

    def __init__(
        self,
        corpus,
        interval_s: float = 1.0,
        timeout_s: float = 30.0,
        probe_deadline_s: float | None = None,
        rtol: float = 1e-3,
        atol: float = 1e-6,
        history: int = 256,
        clock=time.time,
        journal=None,
    ) -> None:
        probes = []
        for entry in corpus:
            if isinstance(entry, GoldenProbe):
                probes.append(entry)
            else:
                kernel, tiles = entry
                probes.append(GoldenProbe(kernel=kernel, tiles=tuple(tiles)))
        if not probes:
            raise ValueError("the probe corpus is empty")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.corpus: tuple[GoldenProbe, ...] = tuple(probes)
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self.probe_deadline_s = probe_deadline_s
        self.rtol = rtol
        self.atol = atol
        self._clock = clock
        self.journal = journal
        self._service = None
        self._frontends: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._ref_lock = threading.Lock()
        self._evaluators: "OrderedDict[str, LearnedEvaluator]" = OrderedDict()
        self._references: dict[tuple, np.ndarray] = {}
        self._recent: deque[dict] = deque(maxlen=history)
        self._routes: "OrderedDict[str, dict]" = OrderedDict()
        self.probes = 0
        self.failures = 0
        self.sweeps = 0
        self.last_sweep: dict | None = None
        self._next_due: float | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def bind(self, service) -> None:
        """Bind to a service (``service.attach_prober`` calls this).

        Installs the in-process probe transport; socket frontends are
        added explicitly via :meth:`add_socket` (the prober cannot know
        a frontend's address).
        """
        self._service = service
        if self.journal is None:
            self.journal = getattr(service, "journal", None)
        self._frontends.setdefault("inprocess", self._submit_inprocess)

    def add_socket(self, address, name: str = "socket") -> None:
        """Probe through a live TCP frontend at ``address`` as well.

        Uses a dedicated :class:`~repro.serving.client.SocketEvaluator`
        connection per prober, so socket probes exercise the real wire
        path — framing, kernel interning, miss/retry — end to end.
        """
        from .client import SocketEvaluator

        client = SocketEvaluator(address, timeout_s=self.timeout_s)
        self._frontends[name] = client._call_once

    def _submit_inprocess(self, request):
        service = self._service
        future = service.submit(request)
        if not service.is_running:
            service.flush()
        return future.result(timeout=self.timeout_s)

    # ------------------------------------------------------------------ #
    # references (the known answers)
    # ------------------------------------------------------------------ #

    def _evaluator(self, version: str) -> LearnedEvaluator | None:
        """A direct evaluator over ``version``'s own sealed blob."""
        with self._ref_lock:
            evaluator = self._evaluators.get(version)
            if evaluator is not None:
                return evaluator
            try:
                blob = self._service.registry.blob(version)
                evaluator = LearnedEvaluator.from_checkpoint_bytes(blob)
            except Exception:
                return None
            self._evaluators[version] = evaluator
            while len(self._evaluators) > 4:
                self._evaluators.popitem(last=False)
            return evaluator

    def _reference(self, version: str, probe: GoldenProbe) -> np.ndarray | None:
        """The known answer for ``probe`` under ``version`` (memoized).

        Computed once per (version, probe) against a direct evaluator at
        the probe's exact batch shape — the bitwise comparison target.
        """
        key = (version, probe.kernel.fingerprint(),
               tuple(t.dims for t in probe.tiles))
        with self._ref_lock:
            cached = self._references.get(key)
        if cached is not None:
            return cached
        evaluator = self._evaluator(version)
        if evaluator is None:
            return None
        try:
            reference = np.asarray(
                evaluator.score_tiles_batched(probe.kernel, list(probe.tiles))
            )
        except Exception:
            return None
        with self._ref_lock:
            self._references[key] = reference
            if len(self._references) > 16 * len(self.corpus):
                self._references.pop(next(iter(self._references)))
        return reference

    # ------------------------------------------------------------------ #
    # probing
    # ------------------------------------------------------------------ #

    def sweep(self) -> dict:
        """One full pass over the route matrix; returns the sweep summary.

        Every corpus probe goes through every registered frontend; the
        served version is verified against its own reference, coverage
        of the expected frontend × shard × live-version matrix is
        reported (the rollout chooser decides which live version each
        probe reaches — uncovered cells are reported, not failed).
        """
        if self._service is None:
            raise RuntimeError("prober is not bound to a service; attach it first")
        service = self._service
        started = self._clock()
        live = tuple(service.registry.live_versions)
        covered: set[tuple[str, int, str]] = set()
        verdicts: list[dict] = []
        for frontend, submit in list(self._frontends.items()):
            for probe in self.corpus:
                request = TileScoresRequest(
                    kernel=probe.kernel,
                    tiles=probe.tiles,
                    deadline_s=self.probe_deadline_s,
                    synthetic=True,
                )
                try:
                    shard = service.executor.shard_for(
                        probe.kernel.fingerprint()
                    )
                except Exception:
                    shard = -1
                verdict = self._probe_once(frontend, submit, probe, request, shard)
                verdicts.append(verdict)
                if verdict["version"] is not None:
                    covered.add((frontend, shard, verdict["version"]))
        expected = {
            (frontend, shard, version)
            for frontend in self._frontends
            for shard in range(service.executor.num_shards)
            for version in live
        }
        uncovered = sorted(
            f"{f}:{s}:{v}" for (f, s, v) in expected - covered
        )
        failures = sum(1 for v in verdicts if v["outcome"] == "fail")
        summary = {
            "ts": started,
            "probes": len(verdicts),
            "failures": failures,
            "live_versions": list(live),
            "routes_covered": len(covered),
            "routes_expected": len(expected),
            "uncovered": uncovered,
        }
        with self._lock:
            self.sweeps += 1
            self.last_sweep = summary
            self._next_due = started + self.interval_s
        self._journal(
            "probe.sweep",
            probes=len(verdicts),
            failures=failures,
            routes_covered=len(covered),
            routes_expected=len(expected),
        )
        return summary

    def _probe_once(self, frontend, submit, probe, request, shard) -> dict:
        started = self._clock()
        outcome, reason, exact, version, trace_id = "pass", None, None, None, None
        try:
            response = submit(request)
        except Exception as exc:
            response = None
            outcome = "fail"
            reason = f"transport:{type(exc).__name__}"
        if response is not None:
            version = response.model_version
            trace_id = response.trace_id
            if response.error is not None:
                outcome = "fail"
                reason = f"error:{response.error_code or 'untyped'}"
            elif response.degraded:
                # The analytical fallback keeps clients moving, but for a
                # probe it means the learned route did NOT answer.
                outcome, reason, version = "fail", "degraded", None
            else:
                reference = self._reference(version, probe)
                if reference is None:
                    outcome, reason = "fail", "reference_unavailable"
                else:
                    value = np.asarray(response.value)
                    if value.shape == reference.shape and np.array_equal(
                        value, reference
                    ):
                        exact = True
                    elif value.shape == reference.shape and np.allclose(
                        value, reference, rtol=self.rtol, atol=self.atol
                    ):
                        exact = False
                    else:
                        outcome, reason = "fail", "known_answer_mismatch"
        route = f"{frontend}:{shard}:{version if version is not None else '?'}"
        verdict = {
            "ts": started,
            "frontend": frontend,
            "shard": shard,
            "version": version,
            "kernel": probe.kernel.fingerprint()[:12],
            "route": route,
            "outcome": outcome,
            "reason": reason,
            "exact": exact,
            "latency_s": max(self._clock() - started, 0.0),
            "trace_id": trace_id,
        }
        entry = None
        if outcome == "fail":
            entry = self._journal(
                "probe.failure",
                trace_id=trace_id,
                frontend=frontend,
                shard=shard,
                version=version,
                kernel=verdict["kernel"],
                reason=reason,
            )
        with self._lock:
            self.probes += 1
            stats = self._routes.get(route)
            if stats is None:
                stats = self._routes[route] = {
                    "probes": 0,
                    "failures": 0,
                    "last_outcome": None,
                    "last_ts": None,
                    "first_failure_ts": None,
                    "first_failure_seq": None,
                }
            stats["probes"] += 1
            stats["last_outcome"] = outcome
            stats["last_ts"] = started
            if outcome == "fail":
                self.failures += 1
                stats["failures"] += 1
                if stats["first_failure_ts"] is None:
                    stats["first_failure_ts"] = started
                    if entry is not None:
                        stats["first_failure_seq"] = entry.get("seq")
            else:
                # A healthy probe clears the route's failure streak: the
                # *next* failure is a fresh first-breach marker.
                stats["first_failure_ts"] = None
                stats["first_failure_seq"] = None
                # A no-answer failure (transport / typed error / degraded)
                # has no served version and lands on this cell's "?"
                # route. That is a per-(frontend, shard) fact — any
                # healthy answer from the cell supersedes it, so mark it
                # recovered or it would read as failing forever.
                unknown = self._routes.get(f"{frontend}:{shard}:?")
                if unknown is not None and unknown["last_outcome"] == "fail":
                    unknown["last_outcome"] = "recovered"
                    unknown["first_failure_ts"] = None
                    unknown["first_failure_seq"] = None
            self._recent.append(verdict)
        return verdict

    def _journal(self, kind: str, trace_id=None, **fields):
        if self.journal is None:
            return None
        try:
            return self.journal.record(kind, trace_id=trace_id, **fields)
        except Exception:
            return None

    # ------------------------------------------------------------------ #
    # schedule
    # ------------------------------------------------------------------ #

    def due(self) -> bool:
        """True when the deterministic schedule calls for a sweep."""
        with self._lock:
            return self._next_due is None or self._clock() >= self._next_due

    def maybe_sweep(self) -> dict | None:
        """Sweep iff due — the pulled-schedule entry point."""
        return self.sweep() if self.due() else None

    def start(self, interval_s: float | None = None) -> "SyntheticProber":
        """Sweep continuously on a daemon thread; idempotent."""
        if interval_s is not None:
            self.interval_s = interval_s
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.is_set():
                try:
                    self.sweep()
                except Exception:
                    pass
                self._stop.wait(self.interval_s)

        self._thread = threading.Thread(
            target=_loop, name="synthetic-prober", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sweep thread; idempotent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    # ------------------------------------------------------------------ #
    # readout
    # ------------------------------------------------------------------ #

    def recent(self, n: int = 20) -> list[dict]:
        """The newest ``n`` probe verdicts, newest first."""
        with self._lock:
            items = list(self._recent)
        items.reverse()
        return items[:max(n, 0)]

    def failing_routes(self) -> dict[str, dict]:
        """Routes whose most recent probe failed, with breach markers."""
        with self._lock:
            return {
                route: dict(stats)
                for route, stats in self._routes.items()
                if stats["last_outcome"] == "fail"
            }

    def coverage(self) -> dict:
        """Which executor shards the corpus reaches (corpus hygiene)."""
        if self._service is None:
            return {"shards_total": 0, "shards_covered": 0, "missing": []}
        total = self._service.executor.num_shards
        reached = set()
        for probe in self.corpus:
            try:
                reached.add(
                    self._service.executor.shard_for(probe.kernel.fingerprint())
                )
            except Exception:
                continue
        missing = sorted(set(range(total)) - reached)
        return {
            "shards_total": total,
            "shards_covered": len(reached & set(range(total))),
            "missing": missing,
        }

    def board(self) -> dict:
        """The gateway's ``/probes`` payload."""
        with self._lock:
            routes = {route: dict(stats) for route, stats in self._routes.items()}
            last_sweep = dict(self.last_sweep) if self.last_sweep else None
            probes, failures, sweeps = self.probes, self.failures, self.sweeps
        return {
            "corpus": len(self.corpus),
            "frontends": list(self._frontends),
            "interval_s": self.interval_s,
            "probes": probes,
            "failures": failures,
            "sweeps": sweeps,
            "coverage": self.coverage(),
            "routes": routes,
            "failing_routes": sorted(
                r for r, s in routes.items() if s["last_outcome"] == "fail"
            ),
            "last_sweep": last_sweep,
            "recent": self.recent(20),
        }

    def health(self) -> dict:
        """The compact slice ``/healthz`` folds into its verdict."""
        with self._lock:
            failing = sorted(
                route
                for route, stats in self._routes.items()
                if stats["last_outcome"] == "fail"
            )
            return {
                "probes": self.probes,
                "failures": self.failures,
                "failing_routes": failing,
            }

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Prober accounting for the metrics registry."""
        with self._lock:
            per_route = {
                route: {
                    "probes": float(stats["probes"]),
                    "failures": float(stats["failures"]),
                    "failing": 1.0 if stats["last_outcome"] == "fail" else 0.0,
                }
                for route, stats in self._routes.items()
            }
            failing = sum(
                1
                for stats in self._routes.values()
                if stats["last_outcome"] == "fail"
            )
            return {
                "prober_probes": float(self.probes),
                "prober_failures": float(self.failures),
                "prober_sweeps": float(self.sweeps),
                "prober_routes_failing": float(failing),
                "prober_route": per_route,
            }

    def register_into(self, registry) -> None:
        """Contribute the ``prober_*`` family to a telemetry registry."""
        registry.register_collector("prober", self.snapshot)
        registry.mark_counter(
            "prober_probes", "prober_failures", "prober_sweeps"
        )
