"""The cost-model inference service: scheduler + registry + replicas.

``CostModelService`` is the in-process serving tier the paper's deployment
mode implies: one warm learned model shared by many concurrent compile-time
clients (tile tuners, fusion tuners, benchmark drivers). Requests from all
clients funnel through a :class:`~repro.serving.scheduler.MicroBatcher`
and are executed in coalesced model forwards:

* tile-score requests for the *same kernel* are merged into one
  ``score_tiles_batched`` call (their candidate lists concatenated, the
  score vector split back per request);
* kernel-runtime requests are merged into one
  ``program_runtimes_batched`` call over single-kernel programs;
* program-population requests are merged into one
  ``program_runtimes_batched`` call over the concatenated populations.

Model selection is snapshotted **once per micro-batch**: a registry hot
swap (:meth:`ModelRegistry.activate`) takes effect at the next batch cut,
so in-flight requests are never dropped and no response ever mixes two
checkpoints. Each response is stamped with the version that produced it.

The service runs either with a background worker thread (:meth:`start`,
for genuinely concurrent clients) or fully synchronously
(:meth:`flush` pumps pending requests on the caller's thread — the
deterministic mode tests and single-threaded drivers use).
"""
from __future__ import annotations

import threading
import time
import traceback
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..evaluation.service import ServingStats
from ..models.trainer import TrainResult
from .protocol import (
    KernelRuntimeRequest,
    ProgramRuntimesRequest,
    Request,
    Response,
    TileScoresRequest,
)
from .registry import ModelRegistry
from .replica import ReplicaPool, ResultCache
from .scheduler import MicroBatcher, PendingRequest


@dataclass(frozen=True)
class ServiceConfig:
    """Serving knobs.

    Attributes:
        max_batch_size: micro-batch cut size (1 = naive per-request path).
        flush_interval_s: max age of the oldest pending request before a
            partial batch is cut anyway.
        replicas: evaluator replicas to shard kernels across.
        max_cached_kernels: per-replica precompute/feature memo bound.
        result_cache_entries: shared result-cache capacity (0 disables).
        share_kernel_cache: one precompute cache for all replicas.
    """

    max_batch_size: int = 64
    flush_interval_s: float = 0.002
    replicas: int = 1
    max_cached_kernels: int = 1024
    result_cache_entries: int = 4096
    share_kernel_cache: bool = True


class CostModelService:
    """Micro-batched inference service over a versioned model registry.

    Args:
        source: a :class:`ModelRegistry` (possibly shared with other
            services) or a bare :class:`TrainResult`, which is wrapped in
            a private single-version registry.
        config: serving knobs; defaults are sensible for in-process use.

    Responses hand out cached arrays by reference; clients must treat
    response values as read-only.
    """

    def __init__(
        self,
        source: ModelRegistry | TrainResult,
        config: ServiceConfig | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if isinstance(source, ModelRegistry):
            self.registry = source
        else:
            self.registry = ModelRegistry()
            self.registry.publish(source)
        if self.registry.active_version is None:
            raise ValueError("registry has no published model to serve")
        self.scheduler = MicroBatcher(
            max_batch_size=self.config.max_batch_size,
            flush_interval_s=self.config.flush_interval_s,
        )
        self.result_cache = ResultCache(self.config.result_cache_entries)
        self.stats = ServingStats()
        self._pool: ReplicaPool | None = None
        self._exec_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def is_running(self) -> bool:
        """True while the background worker thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "CostModelService":
        """Spawn the background worker; idempotent."""
        if self._closed:
            raise RuntimeError("service is stopped")
        if not self.is_running:
            self._thread = threading.Thread(
                target=self._worker, name="cost-model-service", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Drain pending requests, then stop the worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.scheduler.close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.flush()  # never started: drain synchronously

    def __enter__(self) -> "CostModelService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #

    def submit(self, request: Request):
        """Enqueue a request; returns a Future resolving to a Response.

        Repeated identical requests are answered straight from the shared
        result cache without queueing (latency ~0, no forward).
        """
        version = self.registry.active_version
        try:
            key = request.cache_key()
        except Exception:
            # Malformed requests still get a future; the worker resolves
            # it with an error response instead of submit() throwing.
            key = None
        if key is not None:
            cached = self.result_cache.get((version, key))
            if cached is not None:
                response = Response(
                    value=cached, model_version=version, batch_size=1, cache_hit=True
                )
                self.stats.record_response(0.0, cache_hit=True)
                future: Future = Future()
                future.set_result(response)
                return future
        return self.scheduler.submit(request)

    def flush(self) -> int:
        """Execute everything currently pending on the caller's thread.

        Returns the number of requests processed. This is the synchronous
        pump for services without a worker thread; it is safe (serialized)
        alongside a running worker but defeats the purpose if overused.
        """
        processed = 0
        while True:
            batch = self.scheduler.drain()
            if not batch:
                return processed
            self._execute_safe(batch)
            processed += len(batch)

    def metrics(self) -> dict:
        """One merged operational snapshot (stats + caches + placement)."""
        snapshot = self.stats.snapshot()
        snapshot.update(
            {f"result_cache_{k}": v for k, v in self.result_cache.stats().items()}
        )
        pool = self._pool
        if pool is not None:
            snapshot.update({f"evaluator_{k}": v for k, v in pool.stats().items()})
        snapshot["active_version"] = self.registry.active_version
        snapshot["replicas"] = float(self.config.replicas)
        snapshot["pending"] = float(len(self.scheduler))
        return snapshot

    # ------------------------------------------------------------------ #
    # worker
    # ------------------------------------------------------------------ #

    def _worker(self) -> None:
        while True:
            batch = self.scheduler.next_batch(timeout=0.1)
            if batch:
                self._execute_safe(batch)
            elif self._closed:
                return

    def _execute_safe(self, batch: list[PendingRequest]) -> None:
        """Execute a batch; a failure fails the batch, never the worker."""
        try:
            self._execute(batch)
        except Exception:
            message = traceback.format_exc()
            version = self.registry.active_version
            for pending in batch:
                self._resolve_error(pending, version, message)

    def _pool_for(self, version: str) -> ReplicaPool:
        if self._pool is None or self._pool.version != version:
            self._pool = ReplicaPool(
                self.registry.get(version),
                version,
                replicas=self.config.replicas,
                max_cached_kernels=self.config.max_cached_kernels,
                share_kernel_cache=self.config.share_kernel_cache,
            )
        return self._pool

    def _execute(self, batch: list[PendingRequest]) -> None:
        """Run one micro-batch: group, forward, resolve, account."""
        with self._exec_lock:
            # Checkpoint snapshot for the whole batch — the hot-swap
            # atomicity guarantee lives on this line.
            version = self.registry.active_version
            pool = self._pool_for(version)
            forwards = 0

            tile_groups: dict[tuple[int, str], list[PendingRequest]] = {}
            runtime_groups: dict[int, list[PendingRequest]] = {}
            program_groups: dict[int, list[PendingRequest]] = {}
            for pending in batch:
                request = pending.request
                try:
                    # A malformed request (e.g. fingerprinting raises) must
                    # fail alone, not take its co-batched neighbours down.
                    evaluator = pool.route(request.shard_key())
                    if isinstance(request, TileScoresRequest):
                        key = (id(evaluator), request.kernel.fingerprint())
                        tile_groups.setdefault(key, []).append(pending)
                    elif isinstance(request, KernelRuntimeRequest):
                        runtime_groups.setdefault(id(evaluator), []).append(pending)
                    elif isinstance(request, ProgramRuntimesRequest):
                        program_groups.setdefault(id(evaluator), []).append(pending)
                    else:
                        self._resolve_error(
                            pending,
                            version,
                            f"unknown request type {type(request).__name__}",
                        )
                except Exception:
                    self._resolve_error(pending, version, traceback.format_exc())

            evaluators = {id(e): e for e in pool.replicas}

            for (evaluator_id, _), group in tile_groups.items():
                evaluator = evaluators[evaluator_id]
                kernel = group[0].request.kernel
                merged = [t for p in group for t in p.request.tiles]
                try:
                    scores = evaluator.score_tiles_batched(kernel, merged)
                    forwards += 1
                except Exception:
                    self._resolve_group_error(group, version)
                    continue
                offset = 0
                for pending in group:
                    n = len(pending.request.tiles)
                    value = np.asarray(scores[offset:offset + n])
                    offset += n
                    self._resolve(pending, value, version, len(group))

            for evaluator_id, group in runtime_groups.items():
                evaluator = evaluators[evaluator_id]
                try:
                    runtimes = evaluator.program_runtimes_batched(
                        [[p.request.kernel] for p in group]
                    )
                    forwards += 1
                except Exception:
                    self._resolve_group_error(group, version)
                    continue
                for pending, runtime in zip(group, runtimes):
                    self._resolve(pending, float(runtime), version, len(group))

            for evaluator_id, group in program_groups.items():
                evaluator = evaluators[evaluator_id]
                merged_programs = [
                    list(kernels) for p in group for kernels in p.request.programs
                ]
                try:
                    runtimes = evaluator.program_runtimes_batched(merged_programs)
                    forwards += 1
                except Exception:
                    self._resolve_group_error(group, version)
                    continue
                offset = 0
                for pending in group:
                    n = len(pending.request.programs)
                    value = np.asarray(runtimes[offset:offset + n])
                    offset += n
                    self._resolve(pending, value, version, len(group))

            self.stats.record_batch(len(batch), forwards)

    def _resolve(
        self, pending: PendingRequest, value, version: str, group_size: int
    ) -> None:
        if pending.future.done():
            return
        latency = time.perf_counter() - pending.enqueued_at
        key = pending.request.cache_key()
        if key is not None:
            self.result_cache.put((version, key), value)
        self.stats.record_response(latency, cache_hit=False)
        pending.future.set_result(
            Response(
                value=value,
                model_version=version,
                batch_size=group_size,
                latency_s=latency,
            )
        )

    def _resolve_error(self, pending: PendingRequest, version: str, message: str) -> None:
        if pending.future.done():
            return
        latency = time.perf_counter() - pending.enqueued_at
        self.stats.record_response(latency, cache_hit=False, error=True)
        pending.future.set_result(
            Response(
                value=None, model_version=version, latency_s=latency, error=message
            )
        )

    def _resolve_group_error(self, group: list[PendingRequest], version: str) -> None:
        message = traceback.format_exc()
        for pending in group:
            self._resolve_error(pending, version, message)
