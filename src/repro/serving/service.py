"""The scheduler core of the serving stack: batching + versioning + stats.

The serving tier is three explicit layers:

* **transport frontends** (:mod:`repro.serving.frontend`) — request
  ingress: the in-process client path and the length-prefixed TCP socket
  frontend. Both feed the same scheduler core.
* **scheduler core** (this module) — ``CostModelService``: the
  :class:`~repro.serving.scheduler.MicroBatcher`, the per-micro-batch
  checkpoint-version snapshot, the shared version-scoped result cache,
  and the operational stats. Transport-agnostic on one side,
  placement-agnostic on the other.
* **execution backends** (:mod:`repro.serving.executors`) — where the
  coalesced forwards run: in-thread replicas (default) or per-shard
  worker subprocesses with true parallel forwards.

Requests from all frontends funnel through the micro-batcher and are
reduced to as few coalesced forwards as possible:

* tile-score requests for the *same kernel* are merged into one
  ``score_tiles_batched`` call (their candidate lists concatenated, the
  score vector split back per request);
* kernel-runtime requests are merged into one
  ``program_runtimes_batched`` call over single-kernel programs;
* program-population requests are merged into one
  ``program_runtimes_batched`` call over the concatenated populations.

Model selection is snapshotted **once per micro-batch**, through the
deployment control plane's version chooser: the active
:class:`~repro.serving.rollout.RolloutPolicy` names a version per request,
the batch is partitioned by chosen version, and every partition executes
as its own **version-pure** batch — so a registry hot swap
(:meth:`ModelRegistry.activate`) still takes effect at the next batch
cut, in-flight requests are never dropped, and no response (and no
executed batch) ever mixes two checkpoints, canary traffic included.
Each response is stamped with the version that produced it. The executor
syncs its shards to each partition's version before it executes, which
extends the same guarantee across process boundaries.

With the default :class:`~repro.serving.rollout.FullActivation` policy
the partition step degenerates to the single active-version batch of
PR 2/3 — identical commands, identical order, identical numerics.

The service runs either with a background worker thread (:meth:`start`,
for genuinely concurrent clients) or fully synchronously
(:meth:`flush` pumps pending requests on the caller's thread — the
deterministic mode tests and single-threaded drivers use).
"""
from __future__ import annotations

import threading
import time
import traceback
from concurrent.futures import Future
from dataclasses import dataclass, replace

import numpy as np

from ..evaluation.service import ServingStats
from ..models.trainer import TrainResult
from .executors import (
    Executor,
    InThreadExecutor,
    ProcessShardExecutor,
    ProgramCommand,
    TileCommand,
)
from .faults import FaultInjector
from .feedback import FeedbackCollector, request_key
from .placement import RebalancePlan, ShardMap
from .protocol import (
    ERROR_DEADLINE_EXCEEDED,
    ERROR_UNAVAILABLE,
    ERROR_WORKER_FAILURE,
    KernelRuntimeRequest,
    ProgramRuntimesRequest,
    Request,
    Response,
    TileScoresRequest,
)
from .registry import ModelRegistry
from .replica import ResultCache
from .resilience import (
    ANALYTICAL_VERSION,
    AnalyticalFallback,
    CircuitBreaker,
    Overloaded,
)
from .rollout import FullActivation, RolloutPolicy, request_unit_hash
from .scheduler import MicroBatcher, PendingRequest
from .telemetry import TelemetryRegistry, Tracer, slo_burn_rate

EXECUTOR_CHOICES = ("thread", "process")
"""Execution backends: in-thread replica pool, or per-shard subprocesses."""


@dataclass(frozen=True)
class ServiceConfig:
    """Serving knobs.

    Attributes:
        max_batch_size: micro-batch cut size (1 = naive per-request path).
        flush_interval_s: max age of the oldest pending request before a
            partial batch is cut anyway.
        adaptive_flush: derive the effective flush cutoff from the
            observed inter-arrival EMA — zero wait while arrivals are
            sparser than the window (the lone-client regime), the full
            window while they are dense.
        replicas: fingerprint shards — evaluator replicas for the
            ``thread`` executor, worker subprocesses for ``process``.
        executor: one of :data:`EXECUTOR_CHOICES`.
        executor_start_method: multiprocessing start method for the
            ``process`` executor (``spawn`` is thread-safe; ``fork`` boots
            faster).
        max_cached_kernels: per-shard precompute/feature memo bound.
        result_cache_entries: shared result-cache capacity (0 disables).
            The result cache always lives in the frontend process,
            whichever executor runs the forwards.
        share_kernel_cache: one precompute cache for all in-thread
            replicas (ignored by the ``process`` executor — worker caches
            are per-process by construction).
        max_live_versions: warm checkpoint versions each executor keeps
            concurrently (2 = active + staged, the rollout pair).
        fuse_tile_commands: opt-in cross-kernel fused forwards for the
            ``thread`` executor — a micro-batch's tile commands on one
            shard execute as a single multi-kernel forward (the batching
            policy the ``process`` executor already applies per worker).
            Changes batch shape, so scores move at float32 BLAS rounding
            level versus the per-kernel-forward default.
        placement_buckets: bucket count of the executor's
            :class:`~repro.serving.placement.ShardMap` — the granularity
            rebalance plans move. The default uniform map routes
            identically to the legacy ``fingerprint % n`` whenever the
            bucket count is a multiple of the shard count.
        shadow_cache_hit_fraction: fraction of result-cache *hits*
            sampled into shadow batches during a rollout (deterministic
            by request hash). Cache hits bypass execution — and with it
            shadow scoring — so a high-hit-rate deployment would starve
            the staged version's evidence window; sampled hits are
            re-scored off the response path to keep it filling. 0
            (default) disables.
        default_deadline_s: deadline stamped on requests that carry none
            of their own; requests past their deadline are shed before
            dispatch with a typed ``deadline_exceeded`` response.
            ``None`` (default) = no implicit deadline.
        max_pending: admission-control bound on the scheduler queue;
            submissions beyond it raise a typed
            :class:`~.resilience.Overloaded` (0 = unbounded).
        dispatch_timeout_s: the ``process`` executor's watchdog — max
            seconds one shard worker may take to answer one dispatched
            command before it is declared hung and killed/respawned.
        breaker_failure_threshold: consecutive shard infrastructure
            failures that open that shard's circuit breaker.
        breaker_reset_s: open-breaker dwell before a half-open probe
            dispatch is allowed through.
        degrade_to_analytical: answer requests from the analytical TPU
            model (tagged ``degraded=True``) when a shard's breaker is
            open or its worker cannot serve, instead of failing them —
            tuners keep making progress through an outage.
        slo_target_latency_s: per-request latency objective backing the
            telemetry registry's SLO burn-rate gauges (a response slower
            than this counts against the error budget).
        slo_objective: fraction of requests that must meet the latency
            target; ``1 - slo_objective`` is the error budget the burn
            rate is measured against.
    """

    max_batch_size: int = 64
    flush_interval_s: float = 0.002
    adaptive_flush: bool = True
    replicas: int = 1
    executor: str = "thread"
    executor_start_method: str = "spawn"
    max_cached_kernels: int = 1024
    result_cache_entries: int = 4096
    share_kernel_cache: bool = True
    max_live_versions: int = 2
    fuse_tile_commands: bool = False
    placement_buckets: int = 64
    shadow_cache_hit_fraction: float = 0.0
    default_deadline_s: float | None = None
    max_pending: int = 0
    dispatch_timeout_s: float = 30.0
    breaker_failure_threshold: int = 5
    breaker_reset_s: float = 2.0
    degrade_to_analytical: bool = True
    slo_target_latency_s: float = 0.25
    slo_objective: float = 0.99


class CostModelService:
    """Micro-batched inference service over a versioned model registry.

    Args:
        source: a :class:`ModelRegistry` (possibly shared with other
            services) or a bare :class:`TrainResult`, which is wrapped in
            a private single-version registry.
        config: serving knobs; defaults are sensible for in-process use.
        executor: a pre-built execution backend; overrides the
            ``config.executor`` choice (dependency injection for tests
            and custom placements).
        rollout: the deployment control plane's version chooser; defaults
            to :class:`~repro.serving.rollout.FullActivation` (serve the
            active version, exactly the pre-rollout behaviour). Swap at
            runtime with :meth:`set_rollout` — takes effect at the next
            batch cut, like a registry hot swap.
        feedback: optional :class:`~repro.serving.feedback.FeedbackCollector`;
            when attached, every served (and shadow-scored) prediction is
            recorded for joining with measured runtimes — the signal the
            rollout controller promotes and rolls back on.
        faults: optional :class:`~repro.serving.faults.FaultInjector`
            wired through to the executor it builds (the chaos harness);
            ``None`` (default) is the zero-overhead healthy path.
        tracer: optional :class:`~repro.serving.telemetry.Tracer`; when
            attached, sampled requests record spans at every layer
            boundary (frontend, scheduler, executor, worker subprocess).
            ``None`` (default) follows the fault injector's discipline —
            every tracing hook is a single ``is not None`` check, so the
            untraced path is byte-for-byte the pre-tracing path.
        profiler: optional
            :class:`~repro.serving.profiler.ContinuousProfiler`; when
            attached, every pipeline stage (queue wait, batch cut,
            compose, forward, serialize) feeds its exemplar-linked
            histograms. Same ``None``-hook discipline as the tracer.
        journal: optional duck-typed ops journal (anything with
            ``record(kind, **fields)``, canonically
            :class:`~repro.serving.journal.OpsJournal`); when attached,
            lifecycle events — registry swaps, breaker transitions,
            worker respawns, degradations — are durably recorded. It is
            wired through to the registry and the executor here, so one
            journal covers the whole stack.

    Responses hand out cached arrays by reference; clients must treat
    response values as read-only.
    """

    def __init__(
        self,
        source: ModelRegistry | TrainResult,
        config: ServiceConfig | None = None,
        executor: Executor | None = None,
        rollout: RolloutPolicy | None = None,
        feedback: FeedbackCollector | None = None,
        faults: FaultInjector | None = None,
        tracer: Tracer | None = None,
        profiler=None,
        journal=None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.faults = faults
        self.tracer = tracer
        self.profiler = profiler
        self.journal = journal
        #: Optional :class:`~repro.serving.alerts.AlertEngine`; installed
        #: via :meth:`attach_alerts` (the engine needs the built service
        #: to read snapshots from, so it cannot be a ctor argument).
        self.alerts = None
        #: Optional :class:`~repro.serving.prober.SyntheticProber`;
        #: installed via :meth:`attach_prober`. Same ``None``-hook
        #: discipline: a prober-less service is bitwise-identical.
        self.prober = None
        #: Optional :class:`~repro.serving.incidents.IncidentReporter`;
        #: installed via :meth:`attach_incidents`.
        self.incidents = None
        if isinstance(source, ModelRegistry):
            self.registry = source
        else:
            self.registry = ModelRegistry()
            self.registry.publish(source)
        if self.registry.active_version is None:
            raise ValueError("registry has no published model to serve")
        if journal is not None and getattr(self.registry, "journal", None) is None:
            self.registry.journal = journal
        self.scheduler = MicroBatcher(
            max_batch_size=self.config.max_batch_size,
            flush_interval_s=self.config.flush_interval_s,
            adaptive_flush=self.config.adaptive_flush,
            max_pending=self.config.max_pending,
            default_deadline_s=self.config.default_deadline_s,
        )
        if profiler is not None:
            self.scheduler.profiler = profiler
        self.result_cache = ResultCache(self.config.result_cache_entries)
        self.stats = ServingStats()
        self.feedback = feedback
        self._rollout = rollout or FullActivation()
        self._rollout_lock = threading.Lock()
        self.executor = executor or self._build_executor()
        if journal is not None and hasattr(self.executor, "journal"):
            self.executor.journal = journal
        self._exec_lock = threading.Lock()
        self._breakers: dict[int, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._fallback = (
            AnalyticalFallback() if self.config.degrade_to_analytical else None
        )
        self._shadow_backlog: list[tuple[str, PendingRequest]] = []
        self._backlog_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._closed = False
        self._telemetry: TelemetryRegistry | None = None
        self._telemetry_lock = threading.Lock()

    #: Bound on cache-hit shadow requests awaiting an execution slot — a
    #: stalled executor must not queue shadow work without limit.
    _SHADOW_BACKLOG_CAP = 512

    def _build_executor(self) -> Executor:
        shard_map = ShardMap.uniform(
            self.config.replicas, max(self.config.placement_buckets,
                                      self.config.replicas)
        )
        if self.config.executor == "thread":
            return InThreadExecutor(
                self.registry,
                replicas=self.config.replicas,
                max_cached_kernels=self.config.max_cached_kernels,
                share_kernel_cache=self.config.share_kernel_cache,
                max_live_versions=self.config.max_live_versions,
                fuse_tile_commands=self.config.fuse_tile_commands,
                shard_map=shard_map,
            )
        if self.config.executor == "process":
            return ProcessShardExecutor(
                self.registry,
                shards=self.config.replicas,
                max_cached_kernels=self.config.max_cached_kernels,
                start_method=self.config.executor_start_method,
                max_live_versions=self.config.max_live_versions,
                shard_map=shard_map,
                request_timeout_s=self.config.dispatch_timeout_s,
                fault_injector=self.faults,
            )
        raise ValueError(
            f"unknown executor {self.config.executor!r}; "
            f"choose from {EXECUTOR_CHOICES}"
        )

    # ------------------------------------------------------------------ #
    # placement control plane
    # ------------------------------------------------------------------ #

    @property
    def shard_map(self) -> ShardMap | None:
        """The executor's versioned fingerprint → shard assignment."""
        return getattr(self.executor, "shard_map", None)

    def rebalance(self, plan: RebalancePlan) -> dict:
        """Apply a placement plan at a micro-batch boundary.

        Holds the execution lock, so the executor's migration (spawn /
        sync / swap / drain) happens strictly between batches — no
        in-flight response is dropped and no executed batch spans two
        maps. Afterwards the per-shard stats are brought in line with
        the new placement: retired shards' counters merge into their
        heirs (``plan.relabel``), and surviving shards whose bucket set
        changed are reset — their history no longer describes what they
        serve.

        Returns the executor's migration summary, augmented with the
        plan's reason.
        """
        with self._exec_lock:
            old_shards = self.executor.num_shards
            summary = self.executor.apply_plan(plan)
            if plan.relabel:
                self.stats.relabel_shards(plan.relabel)
            new_shards = plan.new_map.num_shards
            retired = [
                shard
                for shard in range(new_shards, old_shards)
                if shard not in plan.relabel
            ]
            if retired:
                self.stats.reset_shards(retired)
            heirs = set(plan.relabel.values())
            affected = [s for s in plan.affected_shards if s not in heirs]
            if affected:
                self.stats.reset_shards(affected)
            self.stats.record_placement_change(len(plan.moves))
        summary["reason"] = plan.reason
        return summary

    # ------------------------------------------------------------------ #
    # rollout control plane
    # ------------------------------------------------------------------ #

    def set_rollout(self, policy: RolloutPolicy) -> None:
        """Install a rollout policy; applies from the next batch cut."""
        with self._rollout_lock:
            self._rollout = policy

    def get_rollout(self) -> RolloutPolicy:
        """The policy currently in force."""
        with self._rollout_lock:
            return self._rollout

    def _route(self, policy: RolloutPolicy, request: Request, active: str) -> str:
        """The validated response-path version for one request."""
        try:
            version = policy.route(request, active)
        except Exception:
            return active
        if version != active and version not in self.registry:
            # The staged version vanished mid-flight (rolled back and
            # retention-pruned): degrade to the active version rather
            # than failing the request.
            return active
        return version

    def _shadow_target(
        self, policy: RolloutPolicy, request: Request, active: str, routed: str
    ) -> str | None:
        """The validated off-response-path shadow version, if any."""
        try:
            shadow = policy.shadow(request, active)
        except Exception:
            return None
        if shadow is None or shadow == routed or shadow not in self.registry:
            return None
        return shadow

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def is_running(self) -> bool:
        """True while the background worker thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "CostModelService":
        """Spawn the background worker; idempotent."""
        if self._closed:
            raise RuntimeError("service is stopped")
        if not self.is_running:
            self._thread = threading.Thread(
                target=self._worker, name="cost-model-service", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Drain pending requests, then stop the worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.scheduler.close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.flush()  # never started: drain synchronously
        self.executor.close()

    def __enter__(self) -> "CostModelService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #

    def submit(self, request: Request):
        """Enqueue a request; returns a Future resolving to a Response.

        Repeated identical requests are answered straight from the shared
        result cache without queueing (latency ~0, no forward). The cache
        lookup follows the rollout routing — a canary-routed request only
        ever hits the staged version's cache slice, so cached responses
        obey the same version-purity as executed ones. During a rollout a
        configurable fraction of cache hits is additionally sampled into
        the shadow backlog (``shadow_cache_hit_fraction``), so staged
        evidence keeps flowing even when the cache answers everything.
        """
        tracer = self.tracer
        ctx = None
        if tracer is not None:
            ctx = getattr(request, "trace", None)
            if ctx is None:
                # In-process ingress: open the root span here. (The
                # socket frontend ingresses before submitting, so its
                # requests arrive with a context already attached.)
                ctx = tracer.ingress(request, process="frontend", name="request")
                if ctx is not None:
                    try:
                        request = replace(request, trace=ctx)
                    except TypeError:
                        # Foreign request-like objects (tests) cannot
                        # carry a context onward.
                        ctx = None
        active = self.registry.active_version
        policy = self.get_rollout()
        version = self._route(policy, request, active)
        # Synthetic probes must exercise the full route (scheduler,
        # executor, worker) — a cached answer would verify nothing — and
        # must not touch the business result cache or counters.
        synthetic = getattr(request, "synthetic", False)
        try:
            key = None if synthetic else request.cache_key()
        except Exception:
            # Malformed requests still get a future; the worker resolves
            # it with an error response instead of submit() throwing.
            key = None
        if key is not None:
            cached = self.result_cache.get((version, key))
            if cached is not None:
                if ctx is not None:
                    tracer.event(ctx, "cache.hit", attrs={"version": version})
                    tracer.finish(ctx, attrs={"cache_hit": True})
                response = Response(
                    value=cached,
                    model_version=version,
                    batch_size=1,
                    cache_hit=True,
                    canary=version != active,
                    trace_id=ctx.trace_id if ctx is not None else None,
                )
                self.stats.record_response(0.0, cache_hit=True)
                self.stats.record_route(version, canary=version != active)
                self._maybe_shadow_cache_hit(policy, request, version)
                future: Future = Future()
                future.set_result(response)
                return future
        try:
            return self.scheduler.submit(request)
        except Overloaded:
            if not synthetic:
                self.stats.record_overload_rejection()
            if ctx is not None:
                tracer.event(ctx, "overload.rejected")
                tracer.finish(ctx, status="error")
            raise

    def _maybe_shadow_cache_hit(
        self, policy: RolloutPolicy, request: Request, routed: str
    ) -> None:
        """Sample a result-cache hit into the shadow backlog.

        Whatever the policy's shadow rule (a ``CanaryFraction`` has
        none), the staged version is the evidence target: the hit never
        executed, so its staged score is missing from the feedback
        window either way. Deterministic hash sampling keeps the
        re-scored subset stable across processes and runs.
        """
        fraction = self.config.shadow_cache_hit_fraction
        if fraction <= 0.0:
            return
        staged = policy.staged_version
        if staged is None or staged == routed or staged not in self.registry:
            return
        try:
            if request_unit_hash(request, salt="cache-hit-shadow") >= fraction:
                return
        except Exception:
            return
        pending = PendingRequest(request=request, enqueued_at=time.perf_counter())
        with self._backlog_lock:
            if len(self._shadow_backlog) >= self._SHADOW_BACKLOG_CAP:
                return
            self._shadow_backlog.append((staged, pending))
        self.stats.record_cache_hit_shadow()

    def _drain_shadow_backlog(self) -> None:
        """Execute sampled cache-hit shadows, off the response path.

        Runs on the worker thread (or from :meth:`flush`), never inside
        :meth:`_execute` — the backlog drains strictly *between*
        micro-batches, so shadow work can never delay a response it
        shares the executor with beyond one batch.
        """
        with self._backlog_lock:
            if not self._shadow_backlog:
                return
            backlog, self._shadow_backlog = self._shadow_backlog, []
        groups: dict[str, list[PendingRequest]] = {}
        for version, pending in backlog:
            groups.setdefault(version, []).append(pending)
        with self._exec_lock:
            for version, group in groups.items():
                if version in self.registry:
                    self._execute_shadow(version, group)

    def flush(self) -> int:
        """Execute everything currently pending on the caller's thread.

        Returns the number of requests processed. This is the synchronous
        pump for services without a worker thread; it is safe (serialized)
        alongside a running worker but defeats the purpose if overused.
        """
        processed = 0
        while True:
            batch = self.scheduler.drain()
            if not batch:
                self._drain_shadow_backlog()
                return processed
            self._execute_safe(batch)
            processed += len(batch)

    def metrics(self) -> dict:
        """One merged operational snapshot (stats + caches + placement).

        Since the telemetry registry landed this is just
        ``self.telemetry.collect()`` — every component contributes its
        snapshot through a registered collector and the merge happens in
        one lock-consistent pass (the same snapshot the gateway's
        ``/metrics`` endpoint exposes). Shape is unchanged: flat float
        counters from :class:`ServingStats` and the caches, plus
        ``per_shard`` — the service's routing stats merged with the
        executor's placement/liveness details — ``per_version`` —
        per-checkpoint routing volume merged with the feedback
        collector's accuracy windows — ``rollout``, ``breakers``,
        ``placement``, and the SLO burn-rate gauges.
        """
        return self.telemetry.collect()

    @property
    def telemetry(self) -> TelemetryRegistry:
        """The unified metrics registry (built lazily on first scrape).

        Components register *collectors* — snapshot callbacks — rather
        than pushing values, so the registry costs nothing until someone
        reads it. External controllers (placement, rollout) register
        their own collectors here when constructed.
        """
        with self._telemetry_lock:
            if self._telemetry is None:
                self._telemetry = self._build_telemetry()
            return self._telemetry

    def _journal_event(self, kind: str, trace_id: str | None = None, **fields):
        """Record a lifecycle event in the attached ops journal.

        One ``None``-check on the hot path; a journal failure is
        swallowed — observability must never fail a request.
        """
        if self.journal is None:
            return
        try:
            self.journal.record(kind, trace_id=trace_id, **fields)
        except Exception:
            pass

    def attach_alerts(self, engine) -> None:
        """Install an :class:`~repro.serving.alerts.AlertEngine`.

        Wires the engine to this service's telemetry snapshot (when it
        has no source of its own), to the attached journal, to a recent-
        trace exemplar source, and into the metrics registry. The engine
        stays *pulled* — call ``engine.evaluate()`` from the ops loop
        (or ``engine.start()`` it).
        """
        if engine._source is None:
            engine._source = self.telemetry.collect
        if engine.journal is None and self.journal is not None:
            engine.journal = self.journal
        if engine._exemplar is None and self.tracer is not None:
            tracer = self.tracer

            def _exemplar() -> str | None:
                recent = tracer.recent(1)
                return recent[0]["trace_id"] if recent else None

            engine._exemplar = _exemplar
        engine.register_into(self.telemetry)
        if self.incidents is not None:
            self.incidents.observe(engine)
        self.alerts = engine

    def attach_prober(self, prober) -> None:
        """Install a :class:`~repro.serving.prober.SyntheticProber`.

        Binds the prober to this service (reference evaluators per live
        registry version, the in-process probe route, shard lookup) and
        registers its ``prober_*`` telemetry family. The prober stays
        *pulled* — call ``prober.sweep()`` from the ops loop (or
        ``prober.start()`` it on its own cadence).
        """
        prober.bind(self)
        prober.register_into(self.telemetry)
        self.prober = prober

    def attach_incidents(self, reporter) -> None:
        """Install an :class:`~repro.serving.incidents.IncidentReporter`.

        Binds the reporter to this service's journal, stats, profiler and
        prober, and hooks it on the attached alert engine's transitions
        (either attach order works) so every ``→ firing`` transition
        self-assembles an incident report.
        """
        reporter.bind(self)
        if self.alerts is not None:
            reporter.observe(self.alerts)
        reporter.register_into(self.telemetry)
        self.incidents = reporter

    def _build_telemetry(self) -> TelemetryRegistry:
        registry = TelemetryRegistry()
        self.stats.register_into(registry)
        self.scheduler.register_into(registry)
        registry.register_collector("result_cache", lambda: {
            f"result_cache_{k}": v for k, v in self.result_cache.stats().items()
        })
        registry.register_collector("executor", lambda: {
            f"evaluator_{k}": v for k, v in self.executor.stats().items()
        })
        registry.register_collector("shards", self._collect_shards)
        registry.register_collector("versions", self._collect_versions)
        registry.register_collector("deployment", self._collect_deployment)
        registry.register_collector("breakers", self._collect_breakers)
        registry.register_collector("fallback", self._collect_fallback)
        registry.register_collector("placement", self._collect_placement)
        registry.register_collector("slo", self._collect_slo)
        if self.feedback is not None:
            self.feedback.register_into(registry)
        if self.tracer is not None:
            registry.register_collector("tracer", self.tracer.snapshot)
            registry.mark_counter(
                "traces_started",
                "traces_evicted",
                "trace_ring_evicted",
                "traces_unsampled",
                "spans_recorded",
            )
        if self.profiler is not None:
            self.profiler.register_into(registry)
        if self.journal is not None and hasattr(self.journal, "register_into"):
            self.journal.register_into(registry)
        return registry

    def _collect_shards(self) -> dict:
        per_shard = self.stats.shard_snapshot()
        for detail in self.executor.shard_stats():
            # A shard that saw no traffic yet still gets a complete
            # entry — consumers index the stats keys unconditionally.
            entry = per_shard.setdefault(
                str(detail["shard"]), ServingStats.empty_shard_entry()
            )
            entry.update({k: v for k, v in detail.items() if k != "shard"})
        return {"per_shard": per_shard}

    def _collect_versions(self) -> dict:
        per_version = self.stats.version_snapshot()
        if self.feedback is not None:
            for version, window in self.feedback.snapshot()["versions"].items():
                entry = per_version.setdefault(
                    version, ServingStats.empty_version_entry()
                )
                entry.update(window)
        return {"per_version": per_version}

    def _collect_deployment(self) -> dict:
        return {
            "rollout": self.get_rollout().describe(),
            "active_version": self.registry.active_version,
            "staged_version": self.registry.staged_version,
            "executor": type(self.executor).__name__,
            "replicas": float(self.executor.num_shards),
            "pending": float(len(self.scheduler)),
            "queue_pressure": self.scheduler.queue_pressure(),
            "flush_interval_effective_s": (
                self.scheduler.effective_flush_interval()
            ),
        }

    def _collect_breakers(self) -> dict:
        with self._breaker_lock:
            breakers = dict(self._breakers)
        return {
            "breakers": {
                str(shard): breaker.snapshot()
                for shard, breaker in breakers.items()
            },
            "breaker_open_seconds": sum(
                b.open_seconds() for b in breakers.values()
            ),
        }

    def _collect_fallback(self) -> dict:
        if self._fallback is None:
            return {}
        return {
            "fallback_answers": float(self._fallback.answers),
            "fallback_failures": float(self._fallback.failures),
        }

    def _collect_placement(self) -> dict:
        shard_map = self.shard_map
        if shard_map is None:
            return {}
        return {"placement": shard_map.describe()}

    def _collect_slo(self) -> dict:
        """SLO burn-rate gauges from the serving latency window/EWMA."""
        target = self.config.slo_target_latency_s
        objective = self.config.slo_objective
        window = self.stats.slo_window(target)
        return {
            "slo_target_latency_s": target,
            "slo_objective": objective,
            "slo_violation_fraction": window["violation_fraction"],
            "slo_window_samples": window["window"],
            "slo_latency_ewma_s": window["latency_ewma_s"],
            "slo_burn_rate": slo_burn_rate(
                window["violation_fraction"], objective
            ),
        }

    # ------------------------------------------------------------------ #
    # worker
    # ------------------------------------------------------------------ #

    def _worker(self) -> None:
        while True:
            batch = self.scheduler.next_batch(timeout=0.1)
            if batch:
                self._execute_safe(batch)
            elif self._closed:
                return
            self._drain_shadow_backlog()

    def _execute_safe(self, batch: list[PendingRequest]) -> None:
        """Execute a batch; a failure fails the batch, never the worker."""
        try:
            self._execute(batch)
        except Exception:
            message = traceback.format_exc()
            version = self.registry.active_version
            for pending in batch:
                self._resolve_error(
                    pending, version, message, code=ERROR_UNAVAILABLE
                )

    def _execute(self, batch: list[PendingRequest]) -> None:
        """Run one micro-batch through the version chooser.

        The rollout policy names a response-path version per request; the
        batch is partitioned by that choice and each partition executes
        as its own version-pure batch (the canary invariant). Shadow
        assignments execute *after* every response future has resolved —
        off the response path by construction.
        """
        with self._exec_lock:
            policy = self.get_rollout()
            active = self.registry.active_version
            batch = self._shed(batch, active)
            if not batch:
                return
            tracer = self.tracer
            profiler = self.profiler
            if tracer is not None or profiler is not None:
                cut_wall, cut_perf = time.time(), time.perf_counter()
            groups: dict[str, list[PendingRequest]] = {}
            shadow_groups: dict[str, list[PendingRequest]] = {}
            for pending in batch:
                version = self._route(policy, pending.request, active)
                # Probes never trigger shadow scoring: a shadow forward
                # spent on synthetic traffic is wasted evidence budget.
                if getattr(pending.request, "synthetic", False):
                    shadow = None
                else:
                    shadow = self._shadow_target(
                        policy, pending.request, active, version
                    )
                pending.routed_version = version
                pending.shadowed_by = shadow
                groups.setdefault(version, []).append(pending)
                if shadow is not None:
                    shadow_groups.setdefault(shadow, []).append(pending)
                if tracer is not None:
                    ctx = getattr(pending.request, "trace", None)
                    if ctx is not None:
                        # Queue wait ends at the batch cut; span times are
                        # wall-clock, so reconstruct the start from the
                        # perf_counter enqueue stamp.
                        tracer.record(
                            ctx,
                            "queue.wait",
                            start=cut_wall - (cut_perf - pending.enqueued_at),
                            end=cut_wall,
                            process="scheduler",
                        )
                        tracer.event(
                            ctx, "batch.cut", attrs={"batch_size": len(batch)}
                        )
                        route_attrs = {
                            "version": version, "canary": version != active,
                        }
                        if shadow is not None:
                            route_attrs["shadow"] = shadow
                        tracer.event(ctx, "route", attrs=route_attrs)
                if profiler is not None:
                    ctx = getattr(pending.request, "trace", None)
                    profiler.record_stage(
                        "queue.wait",
                        cut_perf - pending.enqueued_at,
                        trace_id=ctx.trace_id if ctx is not None else None,
                    )
            total_forwards = 0
            for version, sub_batch in groups.items():
                try:
                    total_forwards += self._execute_version(
                        version, sub_batch, canary=version != active
                    )
                except Exception:
                    # The routed version can vanish between the _route
                    # check and execution (rolled back + retention-pruned
                    # by a concurrent publish): honor the degrade-to-
                    # active contract instead of failing the sub-batch.
                    # _resolve/_resolve_error skip already-done futures,
                    # so a partial first attempt retries safely.
                    if version != active and version not in self.registry:
                        try:
                            total_forwards += self._execute_version(
                                active, sub_batch, canary=False
                            )
                            continue
                        except Exception:
                            version = active
                    message = traceback.format_exc()
                    for pending in sub_batch:
                        self._resolve_error(pending, version, message)
            self.stats.record_batch(len(batch), total_forwards)
            for version, sub_batch in shadow_groups.items():
                self._execute_shadow(version, sub_batch)

    def _shed(
        self, batch: list[PendingRequest], active: str
    ) -> list[PendingRequest]:
        """Drop requests not worth dispatching: abandoned and expired.

        Abandoned = the future already resolved (a frontend dropped the
        client's connection and answered it with a typed disconnect) — a
        forward for it is pure waste. Expired = past its deadline; it is
        resolved here with a typed ``deadline_exceeded`` instead of
        spending a forward on an answer nobody is waiting for.
        """
        now = time.perf_counter()
        live: list[PendingRequest] = []
        for pending in batch:
            synthetic = getattr(pending.request, "synthetic", False)
            if pending.future.done():
                if not synthetic:
                    self.stats.record_abandoned()
            elif pending.expires_at is not None and now >= pending.expires_at:
                if not synthetic:
                    self.stats.record_deadline_expired()
                self._resolve_error(
                    pending,
                    active,
                    f"deadline expired before dispatch "
                    f"(queued {now - pending.enqueued_at:.3f}s)",
                    code=ERROR_DEADLINE_EXCEEDED,
                )
            else:
                live.append(pending)
        return live

    def _breaker(self, shard: int) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one shard."""
        with self._breaker_lock:
            breaker = self._breakers.get(shard)
            if breaker is None:
                on_transition = None
                if self.journal is not None:
                    on_transition = (
                        lambda frm, to, _shard=shard: self._journal_event(
                            "breaker.transition",
                            shard=_shard,
                            **{"from": frm, "to": to},
                        )
                    )
                breaker = CircuitBreaker(
                    failure_threshold=self.config.breaker_failure_threshold,
                    reset_s=self.config.breaker_reset_s,
                    on_transition=on_transition,
                )
                self._breakers[shard] = breaker
            return breaker

    def _degrade_or_fail(
        self,
        pending: PendingRequest,
        version: str,
        shard: int | None,
        reason: str,
        code: str = ERROR_UNAVAILABLE,
    ) -> None:
        """Answer from the analytical model, or fail with a typed error.

        The graceful-degradation path: a breaker-open shard or a dead/
        hung worker must not cost the client its request. Degraded values
        are tagged on the wire, stamped with the analytical version, and
        **never** put in the result cache (an outage must not poison the
        cache with analytical values) nor recorded as feedback
        predictions (they are not the learned model's output).
        """
        if pending.future.done():
            return
        synthetic = getattr(pending.request, "synthetic", False)
        if self._fallback is not None:
            try:
                value = self._fallback.answer(pending.request)
            except Exception:
                value = None
            if value is not None:
                latency = time.perf_counter() - pending.enqueued_at
                if not synthetic:
                    self.stats.record_response(
                        latency, cache_hit=False, shard=shard
                    )
                    self.stats.record_degraded()
                ctx = self._trace_ctx(pending)
                if ctx is not None:
                    self.tracer.event(ctx, "degraded", attrs={"reason": reason})
                    self.tracer.finish(ctx, status="degraded")
                if not synthetic:
                    self._journal_event(
                        "service.degraded",
                        trace_id=ctx.trace_id if ctx is not None else None,
                        shard=shard,
                        version=version,
                        reason=reason.splitlines()[0][:200] if reason else "",
                    )
                pending.future.set_result(
                    Response(
                        value=value,
                        model_version=ANALYTICAL_VERSION,
                        batch_size=1,
                        latency_s=latency,
                        degraded=True,
                        trace_id=ctx.trace_id if ctx is not None else None,
                        synthetic=synthetic,
                    )
                )
                return
        self._resolve_error(pending, version, reason, shard, code=code)

    def _build_commands(self, batch: list[PendingRequest], on_malformed=None):
        """Coalesce a version-pure batch into shard-annotated commands.

        Returns ``(commands, groups)`` where ``groups[i]`` is the
        ``(kind, shard, pendings)`` slice answered by ``commands[i]``.
        Malformed requests (e.g. fingerprinting raises) are reported to
        ``on_malformed(pending, message)`` and excluded — they must fail
        alone, not take their co-batched neighbours down.
        """
        tile_groups: dict[tuple[int, str], list[PendingRequest]] = {}
        runtime_groups: dict[int, list[PendingRequest]] = {}
        program_groups: dict[int, list[PendingRequest]] = {}
        for pending in batch:
            request = pending.request
            try:
                shard = self.executor.shard_for(request.shard_key())
                if isinstance(request, TileScoresRequest):
                    key = (shard, request.kernel.fingerprint())
                    tile_groups.setdefault(key, []).append(pending)
                elif isinstance(request, KernelRuntimeRequest):
                    runtime_groups.setdefault(shard, []).append(pending)
                elif isinstance(request, ProgramRuntimesRequest):
                    program_groups.setdefault(shard, []).append(pending)
                elif on_malformed is not None:
                    on_malformed(
                        pending,
                        f"unknown request type {type(request).__name__}",
                    )
            except Exception:
                if on_malformed is not None:
                    on_malformed(pending, traceback.format_exc())

        commands = []
        groups: list[tuple[str, int, list[PendingRequest]]] = []
        for (shard, _), group in tile_groups.items():
            merged = tuple(t for p in group for t in p.request.tiles)
            commands.append(
                TileCommand(shard=shard, kernel=group[0].request.kernel, tiles=merged)
            )
            groups.append(("tiles", shard, group))
        for shard, group in runtime_groups.items():
            commands.append(
                ProgramCommand(
                    shard=shard,
                    programs=tuple((p.request.kernel,) for p in group),
                )
            )
            groups.append(("runtimes", shard, group))
        for shard, group in program_groups.items():
            merged_programs = tuple(
                tuple(kernels) for p in group for kernels in p.request.programs
            )
            commands.append(ProgramCommand(shard=shard, programs=merged_programs))
            groups.append(("programs", shard, group))
        return commands, groups

    def _execute_version(
        self, version: str, batch: list[PendingRequest], canary: bool
    ) -> int:
        """Run one version-pure batch: group, execute, split, resolve.

        Returns the number of model forwards spent.
        """
        profiler = self.profiler
        if profiler is not None:
            # One exemplar per batch: the first traced request links the
            # aggregate stage histograms back to a concrete trace tree.
            exemplar = next(
                (
                    ctx.trace_id
                    for pending in batch
                    if (ctx := getattr(pending.request, "trace", None))
                    is not None
                ),
                None,
            )
            stage_start = time.perf_counter()
        commands, groups = self._build_commands(
            batch,
            on_malformed=lambda pending, message: self._resolve_error(
                pending, version, message
            ),
        )
        if profiler is not None:
            profiler.record_stage(
                "compose", time.perf_counter() - stage_start, trace_id=exemplar
            )
        # Circuit-breaker gate: commands for a shard whose breaker is
        # open (and not yet due a half-open probe) never reach the
        # executor — their requests are answered from the analytical
        # fallback instead of queueing behind a known-bad worker.
        tracer = self.tracer
        run_commands = []
        run_groups = []
        dispatch_spans: list[tuple] = []  # parallel to run_groups
        for command, group in zip(commands, groups):
            if self._breaker(command.shard).allow():
                spans: tuple = ()
                if tracer is not None:
                    kind, shard, pendings = group
                    opened = []
                    for pending in pendings:
                        ctx = getattr(pending.request, "trace", None)
                        if ctx is None:
                            continue
                        span_id = tracer.start_span(
                            ctx,
                            "executor.dispatch",
                            process="executor",
                            attrs={
                                "shard": shard, "kind": kind,
                                "version": version,
                            },
                        )
                        opened.append((ctx, span_id))
                    if opened:
                        # One trace token per fused command: workers tag
                        # their forward span with it; the result loop
                        # re-parents copies under every sampled request.
                        first_ctx, first_span = opened[0]
                        command = replace(
                            command, trace=(first_ctx.trace_id, first_span)
                        )
                    spans = tuple(opened)
                run_commands.append(command)
                run_groups.append(group)
                dispatch_spans.append(spans)
            else:
                _, shard, pendings = group
                blocked = sum(
                    1
                    for p in pendings
                    if not getattr(p.request, "synthetic", False)
                )
                if blocked:
                    self.stats.record_breaker_block(blocked)
                for pending in pendings:
                    if tracer is not None:
                        ctx = getattr(pending.request, "trace", None)
                        if ctx is not None:
                            tracer.event(
                                ctx, "breaker.block", attrs={"shard": shard}
                            )
                    self._degrade_or_fail(
                        pending,
                        version,
                        shard,
                        f"shard {shard} circuit breaker is open",
                    )
        if profiler is not None:
            stage_start = time.perf_counter()
        try:
            results = (
                self.executor.run(version, run_commands) if run_commands else []
            )
        except Exception:
            if tracer is not None:
                for spans in dispatch_spans:
                    for ctx, span_id in spans:
                        tracer.end_span(ctx.trace_id, span_id, status="error")
            raise
        if profiler is not None:
            profiler.record_stage(
                "forward",
                time.perf_counter() - stage_start,
                trace_id=exemplar,
                path="request;forward;executor",
            )
            stage_start = time.perf_counter()

        forwards = 0
        for (kind, shard, group), result, spans in zip(
            run_groups, results, dispatch_spans
        ):
            if result.error is not None:
                for ctx, span_id in spans:
                    tracer.end_span(ctx.trace_id, span_id, status="error")
                if result.infra:
                    # Infrastructure failure (worker died / hung past the
                    # dispatch timeout / respawn suppressed): feed the
                    # breaker and degrade rather than surfacing worker
                    # tracebacks for a fault the client didn't cause.
                    self._breaker(shard).record_failure()
                    for pending in group:
                        self._degrade_or_fail(
                            pending,
                            version,
                            shard,
                            result.error,
                            code=ERROR_WORKER_FAILURE,
                        )
                else:
                    for pending in group:
                        self._resolve_error(pending, version, result.error, shard)
                continue
            self._breaker(shard).record_success()
            if spans:
                # Re-parent the executor-reported spans (worker forwards)
                # under every sampled request's dispatch span — each
                # trace sees the shared forward it rode in.
                for ctx, span_id in spans:
                    for raw in getattr(result, "spans", ()):
                        tracer.record_raw(
                            dict(
                                raw,
                                trace_id=ctx.trace_id,
                                parent_id=span_id,
                            )
                        )
                    tracer.end_span(ctx.trace_id, span_id)
            # Executors report what each command actually cost: a
            # command fused into another's forward reports 0.
            forwards += result.forwards
            self.stats.record_shard(shard, forwards=result.forwards)
            value = result.value
            if kind == "tiles":
                offset = 0
                for pending in group:
                    n = len(pending.request.tiles)
                    self._resolve(
                        pending,
                        np.asarray(value[offset:offset + n]),
                        version,
                        len(group),
                        shard,
                        canary=canary,
                    )
                    offset += n
            elif kind == "runtimes":
                for pending, runtime in zip(group, value):
                    self._resolve(
                        pending, float(runtime), version, len(group), shard,
                        canary=canary,
                    )
            else:
                offset = 0
                for pending in group:
                    n = len(pending.request.programs)
                    self._resolve(
                        pending,
                        np.asarray(value[offset:offset + n]),
                        version,
                        len(group),
                        shard,
                        canary=canary,
                    )
                    offset += n
        if profiler is not None:
            profiler.record_stage(
                "serialize", time.perf_counter() - stage_start, trace_id=exemplar
            )
        return forwards

    def _execute_shadow(self, version: str, batch: list[PendingRequest]) -> None:
        """Score a batch with a staged version, off the response path.

        Runs after every response future in the micro-batch has resolved:
        nothing here touches futures or the result cache — the only
        outputs are feedback predictions (joined later with measured
        runtimes) and shadow routing stats. Failures are accounted and
        swallowed; a broken staged checkpoint must never take the
        response path down.
        """
        commands, groups = self._build_commands(batch)
        if not commands:
            return
        try:
            results = self.executor.run(version, commands)
        except Exception:
            for _, _, group in groups:
                for _ in group:
                    self.stats.record_route(version, shadow=True, error=True)
            return
        for (kind, _shard, group), result in zip(groups, results):
            if result.error is not None:
                for _ in group:
                    self.stats.record_route(version, shadow=True, error=True)
                continue
            self.stats.record_shadow_forwards(result.forwards)
            value = result.value
            offset = 0
            for pending in group:
                if kind == "tiles":
                    n = len(pending.request.tiles)
                    prediction = np.asarray(value[offset:offset + n])
                elif kind == "runtimes":
                    n = 1
                    prediction = float(value[offset])
                else:
                    n = len(pending.request.programs)
                    prediction = np.asarray(value[offset:offset + n])
                offset += n
                self.stats.record_route(version, shadow=True)
                if self.feedback is not None:
                    self.feedback.record_prediction(
                        version,
                        request_key(pending.request),
                        prediction,
                        request=pending.request,
                        shadow=True,
                    )

    def _trace_ctx(self, pending: PendingRequest):
        """The pending request's trace context, if tracing saw it."""
        if self.tracer is None:
            return None
        return getattr(pending.request, "trace", None)

    def _resolve(
        self,
        pending: PendingRequest,
        value,
        version: str,
        group_size: int,
        shard: int | None = None,
        canary: bool = False,
    ) -> None:
        if pending.future.done():
            return
        latency = time.perf_counter() - pending.enqueued_at
        synthetic = getattr(pending.request, "synthetic", False)
        if synthetic:
            # Probes are excluded from the result cache, business stats,
            # the SLO window, and feedback joins; the prober keeps its
            # own ``prober_*`` accounting.
            key = None
        else:
            key = pending.request.cache_key()
        if key is not None:
            self.result_cache.put((version, key), value)
        if not synthetic:
            self.stats.record_response(latency, cache_hit=False, shard=shard)
            self.stats.record_route(version, canary=canary)
            if self.feedback is not None:
                self.feedback.record_prediction(
                    version,
                    request_key(pending.request),
                    value,
                    request=pending.request,
                )
        ctx = self._trace_ctx(pending)
        if ctx is not None:
            self.tracer.finish(
                ctx,
                attrs={
                    "version": version,
                    "batch_size": group_size,
                    "shard": shard,
                },
            )
        pending.future.set_result(
            Response(
                value=value,
                model_version=version,
                batch_size=group_size,
                latency_s=latency,
                canary=canary,
                shadowed_by=pending.shadowed_by,
                trace_id=ctx.trace_id if ctx is not None else None,
                synthetic=synthetic,
            )
        )

    def _resolve_error(
        self,
        pending: PendingRequest,
        version: str,
        message: str,
        shard: int | None = None,
        code: str | None = None,
    ) -> None:
        if pending.future.done():
            return
        latency = time.perf_counter() - pending.enqueued_at
        synthetic = getattr(pending.request, "synthetic", False)
        if not synthetic:
            self.stats.record_response(
                latency, cache_hit=False, error=True, shard=shard
            )
            self.stats.record_route(version, error=True)
        ctx = self._trace_ctx(pending)
        if ctx is not None:
            self.tracer.finish(
                ctx, status="error", attrs={"error_code": code or "error"}
            )
        pending.future.set_result(
            Response(
                value=None,
                model_version=version,
                latency_s=latency,
                error=message,
                error_code=code,
                trace_id=ctx.trace_id if ctx is not None else None,
                synthetic=synthetic,
            )
        )
