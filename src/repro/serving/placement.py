"""Adaptive placement: load-aware shard maps, rebalance plans, autoscaling.

Until this module, *where* a request executed was frozen at service
construction: ``fingerprint % n_shards`` picked the shard, ``n_shards``
was static config, and a skewed kernel population simply overloaded one
shard's caches (in-thread) or one worker process (process executor)
while its siblings idled. The per-shard :class:`~repro.evaluation.service.ServingStats`
added in the layered-serving PR expose exactly the signals needed to do
better — this module closes that loop:

* :class:`ShardMap` — an explicit, **versioned** fingerprint → shard
  assignment table. Fingerprints hash into a fixed number of *buckets*
  (a stable digest slice, like :func:`~repro.serving.replica.shard_of`),
  and each bucket is assigned to a shard. The uniform map routes
  identically to the legacy ``fingerprint % n`` function whenever the
  bucket count is a multiple of the shard count, so adopting the table
  changes nothing until a rebalance moves a bucket. The map also counts
  per-bucket routing load — the granularity rebalance plans move.
* :class:`RebalancePlan` — an immutable description of one placement
  change: the successor :class:`ShardMap`, the :class:`BucketMove` list
  that produced it, a relabel mapping for retired shards, and the
  reason. Executors *apply* plans (spawning, syncing, and draining
  workers as needed); they never invent them.
* :class:`PlacementController` — the decision half: it watches per-shard
  load/latency EWMAs derived from :class:`ServingStats` deltas, detects
  sustained skew (hysteresis — one noisy interval never triggers a
  migration), respects a rebalance cooldown, and emits greedy
  bucket-move plans that shrink the max/mean load ratio. With
  ``autoscale=True`` it additionally grows or shrinks the shard count
  from the scheduler's queue-pressure signal — replica autoscaling for
  the in-thread executor, worker autoscaling for the process executor.

The controller is intentionally *pulled*, like the rollout controller:
callers invoke :meth:`PlacementController.step` at their own cadence and
the service applies plans at a micro-batch boundary (under the same lock
batches execute under), so a migration never drops a response, never
mixes versions inside a batch, and never changes response numerics —
every shard serves the same checkpoint bytes, so *which* shard executes
a command moves nothing, not even at rounding level.
"""
from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .replica import shard_of

#: Default bucket count: enough granularity to split any realistic hot
#: set across shards, small enough that the table is a trivial tuple.
DEFAULT_BUCKETS = 64


class ShardMap:
    """Versioned fingerprint → shard assignment table with load counters.

    Args:
        table: shard index per bucket (``len(table)`` = bucket count).
        num_shards: explicit shard count; inferred as ``max(table) + 1``
            when omitted. May exceed the inferred value (a freshly grown
            shard owns no buckets until a plan moves some to it).
        version: monotone map version; successor maps must increase it —
            the executor rejects stale plans on that basis.

    Routing is a stable digest slice, exactly like
    :func:`~repro.serving.replica.shard_of`: ``bucket = int(key[:8], 16)
    % num_buckets``, ``shard = table[bucket]``. Because ``x % B % n ==
    x % n`` whenever ``n`` divides ``B``, :meth:`uniform` maps route
    identically to the legacy static function for power-of-two-ish shard
    counts — adopting the table is a pure refactor until a move lands.

    :meth:`shard_for` counts per-bucket routing load (thread-safe); the
    placement controller drains those counters (:meth:`snapshot_loads`)
    to know *which* buckets are hot, not merely which shards.
    """

    def __init__(
        self,
        table,
        num_shards: int | None = None,
        version: int = 1,
    ) -> None:
        table = tuple(int(shard) for shard in table)
        if not table:
            raise ValueError("shard map needs at least one bucket")
        if min(table) < 0:
            raise ValueError("bucket assignments must be >= 0")
        inferred = max(table) + 1
        if num_shards is None:
            num_shards = inferred
        elif num_shards < inferred:
            raise ValueError(
                f"table references shard {inferred - 1} but num_shards is "
                f"{num_shards}"
            )
        self._table = table
        self.num_shards = int(num_shards)
        self.num_buckets = len(table)
        self.version = int(version)
        self._lock = threading.Lock()
        self._loads = [0] * len(table)

    @classmethod
    def uniform(cls, num_shards: int, buckets: int = DEFAULT_BUCKETS) -> "ShardMap":
        """The balanced default: bucket ``i`` on shard ``i % num_shards``."""
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if buckets < num_shards:
            raise ValueError("buckets must be >= num_shards")
        return cls(
            tuple(i % num_shards for i in range(buckets)), num_shards=num_shards
        )

    @property
    def table(self) -> tuple[int, ...]:
        """The immutable bucket → shard assignment."""
        return self._table

    def bucket_of(self, shard_key: str) -> int:
        """The bucket owning ``shard_key`` (stable digest slice — the
        one routing formula, shared with the legacy static function)."""
        return shard_of(shard_key, self.num_buckets)

    def shard_for(self, shard_key: str) -> int:
        """Route a key to its shard, counting the bucket's load."""
        bucket = self.bucket_of(shard_key)
        with self._lock:
            self._loads[bucket] += 1
        return self._table[bucket]

    def snapshot_loads(self, reset: bool = False) -> list[int]:
        """Per-bucket routing counts since construction (or last reset)."""
        with self._lock:
            loads = list(self._loads)
            if reset:
                self._loads = [0] * self.num_buckets
        return loads

    def buckets_of_shard(self, shard: int) -> tuple[int, ...]:
        """All buckets currently assigned to ``shard``."""
        return tuple(b for b, s in enumerate(self._table) if s == shard)

    def successor(self, table, num_shards: int | None = None) -> "ShardMap":
        """A new map with ``version + 1`` (what rebalance plans carry)."""
        if len(tuple(table)) != self.num_buckets:
            raise ValueError("successor must keep the bucket count")
        return ShardMap(table, num_shards=num_shards, version=self.version + 1)

    def describe(self) -> dict:
        """Metrics-friendly summary (JSON-safe keys)."""
        per_shard: dict[str, float] = {
            str(shard): 0.0 for shard in range(self.num_shards)
        }
        for shard in self._table:
            per_shard[str(shard)] += 1.0
        return {
            "version": float(self.version),
            "num_shards": float(self.num_shards),
            "num_buckets": float(self.num_buckets),
            "buckets_per_shard": per_shard,
        }


@dataclass(frozen=True)
class BucketMove:
    """One bucket reassignment inside a rebalance plan."""

    bucket: int
    source: int
    dest: int


@dataclass(frozen=True)
class RebalancePlan:
    """An immutable placement change for an executor to apply.

    Attributes:
        new_map: the successor :class:`ShardMap` (version strictly above
            the executor's current map — stale plans are rejected).
        moves: the bucket reassignments that produced ``new_map``.
        reason: human-readable trigger (lands in metrics/audit).
        relabel: retired shard → heir shard. When the shard count
            shrinks, each retired shard's stats history merges into the
            surviving shard that inherited most of its load, so volume
            counters survive the migration under the new labels.
    """

    new_map: ShardMap
    moves: tuple[BucketMove, ...]
    reason: str
    relabel: dict[int, int] = field(default_factory=dict)

    @property
    def affected_shards(self) -> tuple[int, ...]:
        """Surviving shards whose bucket set changed (stats reset targets:
        their latency/occupancy history no longer describes their new
        assignment)."""
        touched = {m.source for m in self.moves} | {m.dest for m in self.moves}
        return tuple(
            sorted(s for s in touched if s < self.new_map.num_shards)
        )

    def describe(self) -> dict:
        return {
            "map_version": float(self.new_map.version),
            "num_shards": float(self.new_map.num_shards),
            "moves": float(len(self.moves)),
            "reason": self.reason,
            "relabel": {str(k): float(v) for k, v in self.relabel.items()},
        }


@dataclass(frozen=True)
class PlacementConfig:
    """Rebalance/autoscale thresholds of the placement controller.

    Attributes:
        skew_threshold: max/mean per-shard load-EWMA ratio above which an
            observation counts as *skewed*.
        hysteresis: consecutive skewed observations required before a
            plan is emitted — one noisy interval never migrates anything.
        cooldown_s: minimum wall-clock between applied rebalances (the
            executors pay real work per migration; oscillation is worse
            than imbalance).
        ewma_alpha: smoothing weight of the load/latency EWMAs.
        min_interval_requests: observations with fewer new requests than
            this are ignored for skew detection (no evidence, no verdict).
        max_moves: bucket moves per plan (bounds one migration's blast
            radius; repeated steps converge the rest).
        autoscale: derive the shard count from scheduler queue pressure
            (replica autoscaling in-thread, worker autoscaling for the
            process executor).
        min_shards / max_shards: autoscaling bounds.
        scale_up_pressure: queue-pressure EMA above which one shard is
            added per (cooled-down) step.
        scale_down_pressure: queue-pressure EMA below which one shard is
            retired per step.
    """

    skew_threshold: float = 1.5
    hysteresis: int = 2
    cooldown_s: float = 5.0
    ewma_alpha: float = 0.4
    min_interval_requests: int = 32
    max_moves: int = 16
    autoscale: bool = False
    min_shards: int = 1
    max_shards: int = 8
    scale_up_pressure: float = 0.75
    scale_down_pressure: float = 0.05

    def __post_init__(self) -> None:
        if self.skew_threshold <= 1.0:
            raise ValueError("skew_threshold must be > 1.0")
        if self.hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.max_moves < 1:
            raise ValueError("max_moves must be >= 1")
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        if self.scale_down_pressure >= self.scale_up_pressure:
            raise ValueError("scale_down_pressure must be < scale_up_pressure")


class PlacementController:
    """Watch per-shard load, detect skew, issue rebalance plans.

    Args:
        service: the :class:`~repro.serving.service.CostModelService`
            whose stats feed the EWMAs and whose
            :meth:`~repro.serving.service.CostModelService.rebalance`
            applies emitted plans.
        config: thresholds; defaults are conservative.
        clock: injectable monotonic clock (cooldown tests use a fake).

    Like the rollout controller, this one is *pulled*: call
    :meth:`step` at any cadence (per batch, per second, per metrics
    scrape). Each step ingests one stats interval; a plan is only
    emitted when skew persisted for ``hysteresis`` consecutive
    intervals *and* the cooldown expired, and it is applied through the
    service so the map swap lands at a micro-batch boundary.
    """

    def __init__(
        self,
        service,
        config: PlacementConfig | None = None,
        clock=time.monotonic,
        journal=None,
    ) -> None:
        self.service = service
        self.config = config or PlacementConfig()
        #: Duck-typed ops journal; every applied rebalance plan lands as
        #: a ``placement.rebalance`` event when present.
        self.journal = journal
        self._clock = clock
        self._lock = threading.Lock()
        # Serializes whole step() cycles: two concurrent steppers must
        # not both plan off the same map version (the loser's plan would
        # be rejected as stale by the executor).
        self._step_lock = threading.Lock()
        self._bucket_ewma: list[float] | None = None
        self._shard_load_ewma: dict[int, float] = {}
        self._shard_latency_ewma: dict[int, float] = {}
        self._last_requests: dict[int, float] = {}
        self._skewed_streak = 0
        self._last_rebalance_at: float | None = None
        self.rebalances = 0
        self.plans_applied: list[dict] = []
        # Baseline now: traffic served before this controller existed is
        # history, not the first interval's delta — and the map's bucket
        # counters restart with us for the same reason.
        try:
            for shard, entry in self.service.stats.shard_snapshot().items():
                self._last_requests[int(shard)] = entry["requests"]
            shard_map = self.service.shard_map
            if shard_map is not None:
                shard_map.snapshot_loads(reset=True)
        except Exception:
            pass
        # Contribute the load/latency EWMAs and rebalance history to the
        # service's telemetry registry (fakes without one skip this).
        try:
            registry = getattr(self.service, "telemetry", None)
            if registry is not None:
                registry.register_collector(
                    "placement_controller",
                    lambda: {"placement_controller": self.describe()},
                )
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # observation
    # ------------------------------------------------------------------ #

    def _ingest_locked(self, shard_map: ShardMap) -> float:
        """Fold one stats interval into the EWMAs; returns the interval's
        request volume."""
        alpha = self.config.ewma_alpha
        per_shard = self.service.stats.shard_snapshot()
        interval_requests = 0.0
        for shard in range(shard_map.num_shards):
            entry = per_shard.get(str(shard))
            requests = entry["requests"] if entry else 0.0
            latency = entry["latency_p99_s"] if entry else 0.0
            # A reset/relabel restarts a shard's counter mid-flight; the
            # clamp (and step()'s post-apply re-baselining) keeps that
            # from reading as negative load.
            delta = max(requests - self._last_requests.get(shard, 0.0), 0.0)
            self._last_requests[shard] = requests
            interval_requests += delta
            old = self._shard_load_ewma.get(shard)
            self._shard_load_ewma[shard] = (
                delta if old is None else (1.0 - alpha) * old + alpha * delta
            )
            old_latency = self._shard_latency_ewma.get(shard)
            self._shard_latency_ewma[shard] = (
                latency
                if old_latency is None
                else (1.0 - alpha) * old_latency + alpha * latency
            )
        for mapping in (
            self._shard_load_ewma,
            self._shard_latency_ewma,
            self._last_requests,
        ):
            for shard in [s for s in mapping if s >= shard_map.num_shards]:
                del mapping[shard]
        bucket_deltas = shard_map.snapshot_loads(reset=True)
        if (
            self._bucket_ewma is None
            or len(self._bucket_ewma) != shard_map.num_buckets
        ):
            self._bucket_ewma = [0.0] * shard_map.num_buckets
        for bucket, delta in enumerate(bucket_deltas):
            self._bucket_ewma[bucket] = (
                (1.0 - alpha) * self._bucket_ewma[bucket] + alpha * delta
            )
        return interval_requests

    def _skew_locked(self, num_shards: int) -> float:
        loads = [self._shard_load_ewma.get(s, 0.0) for s in range(num_shards)]
        mean = sum(loads) / max(len(loads), 1)
        if mean <= 0.0:
            return 0.0
        return max(loads) / mean

    def _target_shards_locked(self, current: int) -> int:
        """Autoscaling verdict from the scheduler's queue-pressure EMA."""
        if not self.config.autoscale:
            return current
        pressure = self.service.scheduler.queue_pressure()
        if pressure > self.config.scale_up_pressure:
            return min(current + 1, self.config.max_shards)
        if pressure < self.config.scale_down_pressure and current > self.config.min_shards:
            return max(current - 1, self.config.min_shards)
        return current

    def observe(self) -> RebalancePlan | None:
        """Ingest one interval; returns a plan when a rebalance is due.

        The returned plan has *not* been applied — callers hand it to
        :meth:`~repro.serving.service.CostModelService.rebalance` (or use
        :meth:`step`, which does both).
        """
        with self._lock:
            shard_map = self.service.shard_map
            if shard_map is None:
                return None
            interval_requests = self._ingest_locked(shard_map)
            target = self._target_shards_locked(shard_map.num_shards)
            if interval_requests >= self.config.min_interval_requests:
                skew = self._skew_locked(shard_map.num_shards)
                if skew > self.config.skew_threshold:
                    self._skewed_streak += 1
                else:
                    self._skewed_streak = 0
            rebalance_due = self._skewed_streak >= self.config.hysteresis
            resize_due = target != shard_map.num_shards
            if not rebalance_due and not resize_due:
                return None
            now = self._clock()
            if (
                self._last_rebalance_at is not None
                and now - self._last_rebalance_at < self.config.cooldown_s
            ):
                return None
            reason = (
                f"shard count {shard_map.num_shards} -> {target} "
                f"(queue pressure {self.service.scheduler.queue_pressure():.2f})"
                if resize_due
                else (
                    f"load skew {self._skew_locked(shard_map.num_shards):.2f}x "
                    f"> {self.config.skew_threshold:.2f}x for "
                    f"{self._skewed_streak} intervals"
                )
            )
            return self._plan_locked(shard_map, target, reason)

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #

    def _plan_locked(
        self, shard_map: ShardMap, target_shards: int, reason: str
    ) -> RebalancePlan | None:
        table = list(shard_map.table)
        loads = list(self._bucket_ewma or [0.0] * shard_map.num_buckets)
        if sum(loads) <= 0.0:
            # No load evidence yet (e.g. an autoscale right after start):
            # plan by bucket count instead, which is the uniform
            # assumption and keeps plans deterministic.
            loads = [1.0] * shard_map.num_buckets
        moves: list[BucketMove] = []
        relabel: dict[int, int] = {}

        shard_load = [0.0] * max(shard_map.num_shards, target_shards)
        for bucket, shard in enumerate(table):
            shard_load[shard] += loads[bucket]

        # Forced moves first: a retiring shard's buckets must land on a
        # survivor whatever the move budget says.
        if target_shards < shard_map.num_shards:
            inherited: dict[int, dict[int, float]] = {}
            for bucket, shard in enumerate(table):
                if shard < target_shards:
                    continue
                dest = min(range(target_shards), key=lambda s: shard_load[s])
                moves.append(BucketMove(bucket=bucket, source=shard, dest=dest))
                table[bucket] = dest
                shard_load[shard] -= loads[bucket]
                shard_load[dest] += loads[bucket]
                inherited.setdefault(shard, {})
                inherited[shard][dest] = (
                    inherited[shard].get(dest, 0.0) + loads[bucket]
                )
            for retired in range(target_shards, shard_map.num_shards):
                heirs = inherited.get(retired)
                if heirs:
                    relabel[retired] = min(
                        heirs, key=lambda dest: (-heirs[dest], dest)
                    )
            shard_load = shard_load[:target_shards]

        # Greedy balance: repeatedly move the hottest movable bucket from
        # the most- to the least-loaded shard. Each move strictly shrinks
        # the sum of squared shard loads, so the loop terminates — and it
        # stops early once the worst shard is inside the balance target
        # (halfway into the skew band), so a migration fixes the skew it
        # was triggered by without churning already-cold shards.
        mean_load = sum(shard_load) / max(target_shards, 1)
        balance_target = 1.0 + (self.config.skew_threshold - 1.0) / 2.0
        while len(moves) < self.config.max_moves:
            src = max(range(target_shards), key=lambda s: shard_load[s])
            dst = min(range(target_shards), key=lambda s: shard_load[s])
            gap = shard_load[src] - shard_load[dst]
            if gap <= 0.0:
                break
            if mean_load > 0.0 and shard_load[src] / mean_load <= balance_target:
                break
            candidates = [
                b
                for b, shard in enumerate(table)
                if shard == src and 0.0 < loads[b] < gap
            ]
            if not candidates:
                break
            bucket = max(candidates, key=lambda b: loads[b])
            moves.append(BucketMove(bucket=bucket, source=src, dest=dst))
            table[bucket] = dst
            shard_load[src] -= loads[bucket]
            shard_load[dst] += loads[bucket]

        if not moves and target_shards == shard_map.num_shards:
            return None
        return RebalancePlan(
            new_map=shard_map.successor(table, num_shards=target_shards),
            moves=tuple(moves),
            reason=reason,
            relabel=relabel,
        )

    # ------------------------------------------------------------------ #
    # actuation
    # ------------------------------------------------------------------ #

    def step(self) -> dict | None:
        """Observe, and apply the resulting plan (if any) via the service.

        Returns the applied plan's summary, or ``None`` when nothing was
        due. Applying goes through
        :meth:`~repro.serving.service.CostModelService.rebalance`, so the
        map swap lands at a micro-batch boundary. Concurrent steppers
        are serialized — exactly one of them observes, plans, and
        applies per cycle.
        """
        with self._step_lock:
            return self._step_serialized()

    def _step_serialized(self) -> dict | None:
        plan = self.observe()
        if plan is None:
            return None
        summary = self.service.rebalance(plan)
        if self.journal is not None:
            try:
                self.journal.record(
                    "placement.rebalance",
                    reason=plan.reason,
                    moves=len(plan.moves),
                    num_shards=plan.new_map.num_shards,
                    map_version=plan.new_map.version,
                )
            except Exception:
                pass
        with self._lock:
            self._last_rebalance_at = self._clock()
            self._skewed_streak = 0
            self.rebalances += 1
            # The service reset/relabelled the affected shards' counters;
            # re-baseline so the next interval's deltas start clean.
            per_shard = self.service.stats.shard_snapshot()
            self._last_requests = {
                int(shard): entry["requests"] for shard, entry in per_shard.items()
            }
            self.plans_applied.append(summary)
        return summary

    def describe(self) -> dict:
        """Metrics-friendly controller summary."""
        with self._lock:
            return {
                "rebalances": float(self.rebalances),
                "skewed_streak": float(self._skewed_streak),
                "shard_load_ewma": {
                    str(shard): value
                    for shard, value in sorted(self._shard_load_ewma.items())
                },
                "shard_latency_ewma": {
                    str(shard): value
                    for shard, value in sorted(self._shard_latency_ewma.items())
                },
            }
