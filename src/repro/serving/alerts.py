"""Rule-based alerting engine over telemetry snapshots.

PR 7's :class:`~repro.serving.telemetry.TelemetryRegistry` made the
serving stack *visible*; nothing watched it. This module closes the
loop: a set of declarative rules is evaluated against registry
snapshots, and each rule drives a Prometheus-style alert state machine::

    inactive ──breach──▶ pending ──held for_s──▶ firing
        ▲                   │                       │
        └──────cleared──────┘        clear held keep_s (hysteresis)
        ▲                                           │
        └────────────────── resolved ◀──────────────┘

``for_s`` (the *pending hold*) stops one bad scrape from paging;
``keep_s`` (the *resolve hold*) stops a flapping metric from resolving
and re-firing every evaluation. ``resolved`` is a display state — the
next breach restarts the cycle from pending.

Three rule kinds, mirroring what production alerting actually runs on:

* :class:`ThresholdRule` — compare one snapshot metric against a bound
  (``queue depth > 100``, ``breaker open``, …).
* :class:`BurnRateRule` — the SLO rule: fires when the error budget
  burns faster than ``threshold`` (the registry's ``slo_burn_rate``
  gauge, derived from the serving latency window), gated on a minimum
  window population so an idle service never pages.
* :class:`AnomalyRule` — self-calibrating EWMA/z-score detector for
  metrics with no obvious static bound (latency EWMAs, queue pressure).
  Rules stay frozen dataclasses; the per-rule running mean/variance
  lives in the engine.

The engine is **pulled**, like the rollout and placement controllers:
call :meth:`AlertEngine.evaluate` from the ops loop (or let the optional
daemon thread do it) — the clock is injectable, so the whole state
machine is deterministic under test. Every transition is counted,
journaled (``alert.transition`` events, duck-typed journal), exemplar-
linked to a recent trace id when a tracer is attached, and visible at
``/alerts`` on the gateway.
"""
from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from math import sqrt

__all__ = [
    "Alert",
    "AlertEngine",
    "AnomalyRule",
    "BurnRateRule",
    "ThresholdRule",
]

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _resolve(snapshot: dict, metric: str) -> float | None:
    """Look up a possibly dotted metric path in a snapshot dict
    (``per_shard.0.depth`` walks nested dicts; int-looking segments also
    try int keys). ``None`` when absent or non-numeric — an alert rule
    must never raise on a snapshot shape change."""
    node = snapshot
    for part in metric.split("."):
        if not isinstance(node, dict):
            return None
        if part in node:
            node = node[part]
        elif part.isdigit() and int(part) in node:
            node = node[int(part)]
        else:
            return None
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


# ---------------------------------------------------------------------- #
# rules
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ThresholdRule:
    """Breach when ``snapshot[metric] <op> threshold``."""

    name: str
    metric: str
    threshold: float
    op: str = ">"
    for_s: float = 0.0
    keep_s: float = 0.0
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison op {self.op!r}")
        if self.for_s < 0 or self.keep_s < 0:
            raise ValueError("for_s and keep_s must be >= 0")

    def value(self, snapshot: dict, state: dict) -> float | None:
        return _resolve(snapshot, self.metric)

    def breached(self, value: float, state: dict) -> bool:
        return _OPS[self.op](value, self.threshold)

    def detail(self) -> dict:
        return {"metric": self.metric, "op": self.op, "threshold": self.threshold}


@dataclass(frozen=True)
class BurnRateRule:
    """Breach when the SLO error budget burns faster than ``threshold``.

    Reads the registry's ``slo_burn_rate`` gauge (1.0 = exactly on
    budget) and gates on ``min_samples`` in the latency window — a burn
    rate computed over three requests is noise, not a page.
    """

    name: str
    threshold: float = 2.0
    metric: str = "slo_burn_rate"
    samples_metric: str = "slo_window_samples"
    min_samples: int = 32
    for_s: float = 0.0
    keep_s: float = 0.0
    severity: str = "critical"
    description: str = ""

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be > 0")
        if self.for_s < 0 or self.keep_s < 0:
            raise ValueError("for_s and keep_s must be >= 0")

    def value(self, snapshot: dict, state: dict) -> float | None:
        samples = _resolve(snapshot, self.samples_metric)
        if samples is not None and samples < self.min_samples:
            return None  # under-populated window: no verdict either way
        return _resolve(snapshot, self.metric)

    def breached(self, value: float, state: dict) -> bool:
        return value > self.threshold

    def detail(self) -> dict:
        return {
            "metric": self.metric,
            "threshold": self.threshold,
            "min_samples": self.min_samples,
        }


@dataclass(frozen=True)
class AnomalyRule:
    """Breach when ``snapshot[metric]`` deviates more than ``z_threshold``
    standard deviations from its own EWMA baseline.

    The baseline (EWMA mean + EWMA variance, West-style) is held by the
    engine per rule and updated on every evaluation — including breaching
    ones, so a *persistent* shift eventually becomes the new normal and
    the alert resolves itself; only the transient is anomalous. ``warmup``
    evaluations must pass before the rule can breach at all.
    """

    name: str
    metric: str
    z_threshold: float = 3.0
    alpha: float = 0.1
    warmup: int = 10
    min_std: float = 1e-9
    for_s: float = 0.0
    keep_s: float = 0.0
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.z_threshold <= 0:
            raise ValueError("z_threshold must be > 0")
        if self.for_s < 0 or self.keep_s < 0:
            raise ValueError("for_s and keep_s must be >= 0")

    def value(self, snapshot: dict, state: dict) -> float | None:
        return _resolve(snapshot, self.metric)

    def breached(self, value: float, state: dict) -> bool:
        n = state.get("n", 0)
        mean = state.get("mean", 0.0)
        var = state.get("var", 0.0)
        if n == 0:
            state.update(n=1, mean=value, var=0.0, z=0.0)
            return False
        std = sqrt(max(var, 0.0))
        z = abs(value - mean) / max(std, self.min_std)
        state["z"] = z
        # Update the baseline after scoring: today's sample must not
        # vouch for itself.
        delta = value - mean
        mean += self.alpha * delta
        var = (1.0 - self.alpha) * (var + self.alpha * delta * delta)
        state.update(n=n + 1, mean=mean, var=var)
        return n >= self.warmup and z > self.z_threshold

    def detail(self) -> dict:
        return {
            "metric": self.metric,
            "z_threshold": self.z_threshold,
            "alpha": self.alpha,
            "warmup": self.warmup,
        }


# ---------------------------------------------------------------------- #
# alert state
# ---------------------------------------------------------------------- #

INACTIVE = "inactive"
PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"


@dataclass
class Alert:
    """One rule's live state (mutated only by the engine, under its lock)."""

    rule: object
    state: str = INACTIVE
    since: float = 0.0
    pending_since: float | None = None
    clear_since: float | None = None
    last_value: float | None = None
    transitions: int = 0
    fired_count: int = 0
    exemplar_trace_id: str | None = None
    rule_state: dict = field(default_factory=dict)
    #: Bounded (ts, value) history — what an incident report shows as
    #: "the breached rule and its recent series".
    series: deque = field(default_factory=lambda: deque(maxlen=64))

    def to_dict(self) -> dict:
        rule = self.rule
        out = {
            "name": rule.name,
            "severity": rule.severity,
            "state": self.state,
            "since": self.since,
            "last_value": self.last_value,
            "transitions": self.transitions,
            "fired_count": self.fired_count,
            "for_s": rule.for_s,
            "keep_s": rule.keep_s,
            "exemplar_trace_id": self.exemplar_trace_id,
        }
        out.update(rule.detail())
        if self.rule_state.get("z") is not None:
            out["z"] = self.rule_state["z"]
        if rule.description:
            out["description"] = rule.description
        return out


class AlertEngine:
    """Evaluates rules against snapshots and runs their state machines.

    Args:
        source: zero-arg callable returning the metrics snapshot dict
            (typically ``service.telemetry.collect``). Optional — each
            :meth:`evaluate` call may also be handed a snapshot directly.
        rules: initial rule set (more via :meth:`add_rule`).
        clock: time source for hold windows and transition stamps
            (injectable — the whole machine is deterministic under a
            fake clock).
        journal: duck-typed ops journal; every transition is recorded
            as an ``alert.transition`` event when present.
        exemplar: zero-arg callable returning a recent trace id (or
            ``None``) — stamped onto transitions so a firing alert links
            to a concrete request trace. Wire to
            ``lambda: next(iter(tracer.recent(1)), {}).get("trace_id")``
            or let the service do it.

    ``evaluate()`` returns the transitions it made, ``alerts()`` is the
    gateway's ``/alerts`` payload, and :meth:`start`/:meth:`stop` run an
    optional background evaluation thread for deployments without an
    ops loop to pull from.
    """

    def __init__(
        self,
        source=None,
        rules=(),
        clock=time.time,
        journal=None,
        exemplar=None,
    ) -> None:
        self._source = source
        self._clock = clock
        self.journal = journal
        self._exemplar = exemplar
        self._lock = threading.Lock()
        self._alerts: dict[str, Alert] = {}
        #: Transition observers: callables invoked with each transition
        #: dict, outside the engine lock, right after journaling. The
        #: incident reporter hooks here; observer exceptions are
        #: swallowed — a broken reporter must never break alerting.
        self.observers: list = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.evaluations = 0
        self.transitions_total = 0
        for rule in rules:
            self.add_rule(rule)

    def add_rule(self, rule) -> None:
        """Register a rule (name must be unique across the engine)."""
        with self._lock:
            if rule.name in self._alerts:
                raise ValueError(f"alert rule {rule.name!r} already registered")
            self._alerts[rule.name] = Alert(rule=rule, since=self._clock())

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, snapshot: dict | None = None) -> list[dict]:
        """Run one evaluation pass; returns the transitions made.

        Each transition dict carries ``name``, ``from``, ``to``,
        ``value``, ``severity``, ``ts``, and (when available) an
        exemplar ``trace_id`` — the same payload that lands in the
        journal.
        """
        if snapshot is None:
            if self._source is None:
                raise ValueError("no snapshot given and no source configured")
            snapshot = self._source()
        now = self._clock()
        transitions: list[dict] = []
        with self._lock:
            self.evaluations += 1
            for alert in self._alerts.values():
                move = self._step_locked(alert, snapshot, now)
                if move is not None:
                    transitions.append(move)
            self.transitions_total += len(transitions)
        # Journal outside the lock: the journal takes its own lock and
        # does IO; holding ours across that invites ordering deadlocks.
        if self.journal is not None:
            for move in transitions:
                self.journal.record(
                    "alert.transition",
                    trace_id=move.get("trace_id"),
                    **{k: v for k, v in move.items() if k != "trace_id"},
                )
        # Observers also run outside the lock (they may call back into
        # alerts()/series()); journal first so an incident report can
        # already see its own triggering transition in the journal.
        for observer in list(self.observers):
            for move in transitions:
                try:
                    observer(move)
                except Exception:
                    pass
        return transitions

    def _step_locked(self, alert: Alert, snapshot: dict, now: float) -> dict | None:
        rule = alert.rule
        value = rule.value(snapshot, alert.rule_state)
        breach = (
            rule.breached(value, alert.rule_state) if value is not None else False
        )
        if value is not None:
            alert.last_value = value
            alert.series.append((now, value))
        state = alert.state

        if state in (INACTIVE, RESOLVED):
            if breach:
                if rule.for_s > 0:
                    alert.pending_since = now
                    return self._transition_locked(alert, PENDING, now)
                return self._fire_locked(alert, now)
            return None

        if state == PENDING:
            if not breach:
                alert.pending_since = None
                return self._transition_locked(alert, INACTIVE, now)
            # `is None` (not truthiness): an epoch-zero fake clock makes
            # a legitimate pending_since of 0.0.
            pending_since = (
                alert.pending_since if alert.pending_since is not None else now
            )
            if now - pending_since >= rule.for_s:
                return self._fire_locked(alert, now)
            return None

        # FIRING: require the clear condition to hold keep_s before
        # resolving (hysteresis against flapping metrics).
        if breach:
            alert.clear_since = None
            return None
        if alert.clear_since is None:
            alert.clear_since = now
        if now - alert.clear_since >= rule.keep_s:
            alert.clear_since = None
            alert.pending_since = None
            return self._transition_locked(alert, RESOLVED, now)
        return None

    def _fire_locked(self, alert: Alert, now: float) -> dict:
        alert.fired_count += 1
        alert.clear_since = None
        return self._transition_locked(alert, FIRING, now)

    def _transition_locked(self, alert: Alert, to: str, now: float) -> dict:
        frm = alert.state
        alert.state = to
        alert.since = now
        alert.transitions += 1
        trace_id = None
        if self._exemplar is not None:
            try:
                trace_id = self._exemplar()
            except Exception:
                trace_id = None
        if trace_id is not None:
            alert.exemplar_trace_id = trace_id
        return {
            "name": alert.rule.name,
            "from": frm,
            "to": to,
            "value": alert.last_value,
            "severity": alert.rule.severity,
            "ts": now,
            "trace_id": trace_id,
        }

    # ------------------------------------------------------------------ #
    # readout
    # ------------------------------------------------------------------ #

    def alerts(self) -> dict:
        """The full alert board (the gateway's ``/alerts`` payload)."""
        with self._lock:
            rows = [alert.to_dict() for alert in self._alerts.values()]
            evaluations = self.evaluations
            transitions = self.transitions_total
        severity_rank = {"critical": 0, "warning": 1}
        state_rank = {FIRING: 0, PENDING: 1, RESOLVED: 2, INACTIVE: 3}
        rows.sort(
            key=lambda r: (
                state_rank.get(r["state"], 9),
                severity_rank.get(r["severity"], 9),
                r["name"],
            )
        )
        return {
            "firing": sum(1 for r in rows if r["state"] == FIRING),
            "pending": sum(1 for r in rows if r["state"] == PENDING),
            "evaluations": evaluations,
            "transitions": transitions,
            "alerts": rows,
        }

    def state(self, name: str) -> str:
        """The named rule's current state."""
        with self._lock:
            return self._alerts[name].state

    def series(self, name: str) -> list[dict]:
        """The named rule's recent evaluated values, oldest first."""
        with self._lock:
            points = list(self._alerts[name].series)
        return [{"ts": ts, "value": value} for ts, value in points]

    def render(self) -> str:
        """ASCII alert board (``/alerts`` text format)."""
        board = self.alerts()
        lines = [
            f"alerts: {board['firing']} firing, {board['pending']} pending "
            f"({board['evaluations']} evaluations)"
        ]
        for row in board["alerts"]:
            value = (
                f"{row['last_value']:.4g}" if row["last_value"] is not None else "-"
            )
            exemplar = row["exemplar_trace_id"] or "-"
            lines.append(
                f"  [{row['state']:>8}] {row['name']:<24} "
                f"severity={row['severity']:<8} value={value:<10} "
                f"trace={exemplar}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Alert accounting for the metrics registry."""
        with self._lock:
            states = [alert.state for alert in self._alerts.values()]
            return {
                "alerts_firing": float(states.count(FIRING)),
                "alerts_pending": float(states.count(PENDING)),
                "alerts_rules": float(len(states)),
                "alert_evaluations": float(self.evaluations),
                "alert_transitions": float(self.transitions_total),
            }

    def register_into(self, registry) -> None:
        """Contribute alert accounting to a telemetry registry."""
        registry.register_collector("alerts", self.snapshot)
        registry.mark_counter("alert_evaluations", "alert_transitions")

    # ------------------------------------------------------------------ #
    # optional background evaluation
    # ------------------------------------------------------------------ #

    def start(self, interval_s: float = 5.0) -> None:
        """Spawn a daemon thread evaluating every ``interval_s``. The
        pulled :meth:`evaluate` stays available — deployments with an
        ops loop should prefer it (deterministic ordering)."""
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self._thread is not None:
            return
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.evaluate()
                except Exception:
                    pass  # an alerting crash must never kill evaluation

        self._thread = threading.Thread(
            target=run, name="alert-engine", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread (no-op when not running)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
