"""Durable ops journal: a crash-safe, append-only JSONL event log.

Every lifecycle event the serving stack emits — registry hot-swaps and
spills, rollout phase transitions, rebalance plans applied, worker
respawns, circuit-breaker state changes, degradations, alert transitions
— used to vanish with the process. This module makes them durable: one
JSON object per line, appended and flushed per event, with size-based
rotation, so a post-mortem can replay exactly what the control planes
did and when — correlated to request traces through the ``trace_id``
field events carry.

Design rules:

* **Append-only JSONL.** One event per line, ``json.dumps`` + ``"\\n"``,
  flushed to the OS per record (``fsync`` optional — per-event fsync is
  an order of magnitude slower and the OS-buffer guarantee is the right
  default for an ops log). Nothing in the file is ever rewritten.
* **Crash-safe on both ends.** A process killed mid-append leaves at
  most one *torn* final line. On reopen the torn tail is truncated away
  (appending after it would corrupt the next record) and counted;
  :meth:`replay` additionally skips — and counts — any line that fails
  to parse, so one bad record never takes down a post-mortem.
* **Size-based rotation.** When the live file would exceed
  ``max_bytes``, it is rotated to ``<name>.1`` (shifting ``.1 → .2`` …
  and dropping the oldest past ``max_files``). :meth:`replay` reads the
  rotated generations oldest-first, so event order is preserved across
  rotation.
* **Zero overhead when absent.** Components hold ``journal = None`` by
  default and every hook site is a single ``is not None`` check — the
  same discipline as the fault injector and the tracer. The journal is
  duck-typed at those sites: anything with a ``record(kind, **fields)``
  method works (tests use in-memory fakes).

Events are plain dicts with reserved keys ``seq`` (monotone per journal
lineage, survives reopen), ``ts`` (wall clock, injectable), ``kind``
(dotted event vocabulary: ``registry.activate``, ``rollout.transition``,
``placement.rebalance``, ``worker.respawn``, ``breaker.transition``,
``service.degraded``, ``alert.transition``, …) and optional ``trace_id``
linking the event to a retained request trace.
"""
from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path

__all__ = ["OpsJournal"]


class OpsJournal:
    """Crash-safe append-only JSONL event journal with rotation.

    Args:
        path: the live journal file (created, with parents, on first
            record). Rotated generations live beside it as ``<name>.1``
            (newest) … ``<name>.<max_files>`` (oldest).
        max_bytes: rotate before an append would push the live file past
            this size. 0 disables rotation.
        max_files: rotated generations to keep (the live file is not
            counted). Older generations are deleted at rotation time.
        fsync: additionally ``os.fsync`` after every record — durable
            through power loss, ~10x slower. The default (flush only)
            survives process crashes, which is the failure the serving
            stack actually has.
        clock: wall-clock source for the ``ts`` field (tests inject a
            fake for deterministic timelines).
        recent_events: bound on the in-memory tail served by
            :meth:`recent` (the gateway's ``/events/recent``) without
            touching disk.

    Thread-safe: one lock serializes append + rotate. Reopening an
    existing path resumes the ``seq`` numbering after the last valid
    record and truncates a torn final line (counted in
    ``torn_lines_skipped``).
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = 1 << 20,
        max_files: int = 4,
        fsync: bool = False,
        clock=time.time,
        recent_events: int = 256,
    ) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0 (0 = no rotation)")
        if max_files < 1:
            raise ValueError("max_files must be >= 1")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.fsync = fsync
        self._clock = clock
        self._lock = threading.Lock()
        self._recent: deque[dict] = deque(maxlen=max(recent_events, 1))
        self._file = None
        self._size = 0
        self._seq = 0
        self._closed = False
        self.events_recorded = 0
        self.bytes_written = 0
        self.rotations = 0
        self.torn_lines_skipped = 0
        self.invalid_lines_skipped = 0
        self._open()

    # ------------------------------------------------------------------ #
    # open / reopen
    # ------------------------------------------------------------------ #

    def _open(self) -> None:
        """Open (or reopen) the live file for appending.

        An existing file is scanned backwards just far enough to recover
        the last valid record's ``seq`` and to detect a torn final line
        (no trailing newline — the signature of a crash mid-append),
        which is truncated away so the next append starts a clean line.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            raw = self.path.read_bytes()
            if raw and not raw.endswith(b"\n"):
                keep = raw.rfind(b"\n") + 1  # 0 when no complete line exists
                with open(self.path, "r+b") as f:
                    f.truncate(keep)
                raw = raw[:keep]
                self.torn_lines_skipped += 1
            for line in reversed(raw.splitlines()):
                try:
                    entry = json.loads(line)
                    self._seq = int(entry["seq"])
                    break
                except (ValueError, KeyError, TypeError):
                    continue
        self._file = open(self.path, "ab")
        self._size = self._file.tell()

    # ------------------------------------------------------------------ #
    # append path
    # ------------------------------------------------------------------ #

    def record(self, kind: str, trace_id: str | None = None, **fields) -> dict:
        """Append one event; returns the entry as written.

        ``fields`` must be JSON-serializable (anything else is rendered
        through ``str`` — an ops journal degrades to lossy before it
        degrades to lost). Never raises on IO failure once open: a full
        disk must not take the serving path down with it; the failure is
        counted instead (``write_errors``).
        """
        entry = {"seq": 0, "ts": self._clock(), "kind": kind}
        if trace_id is not None:
            entry["trace_id"] = trace_id
        entry.update(fields)
        line = (json.dumps(entry, default=str) + "\n").encode()
        with self._lock:
            if self._closed:
                return entry
            self._seq += 1
            entry["seq"] = self._seq
            line = (json.dumps(entry, default=str) + "\n").encode()
            try:
                if (
                    self.max_bytes
                    and self._size > 0
                    and self._size + len(line) > self.max_bytes
                ):
                    self._rotate_locked()
                self._file.write(line)
                self._file.flush()
                if self.fsync:
                    os.fsync(self._file.fileno())
                self._size += len(line)
                self.bytes_written += len(line)
                self.events_recorded += 1
            except OSError:
                self.write_errors = getattr(self, "write_errors", 0) + 1
            self._recent.append(entry)
        return entry

    def _rotate_locked(self) -> None:
        """Shift ``.1 → .2 → …`` (dropping past ``max_files``) and start
        a fresh live file. ``os.replace`` per generation keeps every
        intermediate state a valid set of journal files."""
        self._file.close()
        oldest = self.path.with_name(f"{self.path.name}.{self.max_files}")
        oldest.unlink(missing_ok=True)
        for gen in range(self.max_files - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{gen}")
            if src.exists():
                os.replace(src, self.path.with_name(f"{self.path.name}.{gen + 1}"))
        os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._file = open(self.path, "ab")
        self._size = 0
        self.rotations += 1

    # ------------------------------------------------------------------ #
    # readout
    # ------------------------------------------------------------------ #

    def recent(self, n: int = 50) -> list[dict]:
        """The newest ``n`` events, newest first, from the in-memory
        tail (no disk IO — this is the gateway's hot path)."""
        with self._lock:
            tail = list(self._recent)
        return list(reversed(tail[-max(n, 0):]))

    def generations(self) -> list[Path]:
        """Every journal file on disk, oldest first (rotated then live)."""
        out = []
        for gen in range(self.max_files, 0, -1):
            candidate = self.path.with_name(f"{self.path.name}.{gen}")
            if candidate.exists():
                out.append(candidate)
        if self.path.exists():
            out.append(self.path)
        return out

    def replay(self):
        """Yield every durable event, oldest first, across rotations.

        Unparseable lines (torn mid-file by a crash during rotation, or
        hand-damaged) are skipped and counted in
        ``invalid_lines_skipped`` — replay is for post-mortems, and a
        post-mortem tool that dies on the corruption it is investigating
        is useless.
        """
        with self._lock:
            if self._file is not None and not self._closed:
                self._file.flush()
            files = self.generations()
        for path in files:
            try:
                raw = path.read_bytes()
            except OSError:
                continue
            for line in raw.splitlines():
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    self.invalid_lines_skipped += 1
                    continue
                if not isinstance(entry, dict) or "kind" not in entry:
                    self.invalid_lines_skipped += 1
                    continue
                yield entry

    def timeline(self, kinds: tuple[str, ...] | None = None) -> list[dict]:
        """Replay into a list, optionally filtered to ``kinds`` prefixes
        (``("rollout.", "placement.")`` reconstructs the control planes'
        state history)."""
        out = []
        for entry in self.replay():
            if kinds is None or any(entry["kind"].startswith(k) for k in kinds):
                out.append(entry)
        return out

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Journal accounting for the metrics registry."""
        with self._lock:
            return {
                "journal_events": float(self.events_recorded),
                "journal_bytes_written": float(self.bytes_written),
                "journal_rotations": float(self.rotations),
                "journal_torn_lines_skipped": float(self.torn_lines_skipped),
                "journal_size_bytes": float(self._size),
                "journal_write_errors": float(getattr(self, "write_errors", 0)),
            }

    def register_into(self, registry) -> None:
        """Contribute journal accounting to a telemetry registry
        (duck-typed, like every other component's ``register_into``)."""
        registry.register_collector("journal", self.snapshot)
        registry.mark_counter(
            "journal_events",
            "journal_bytes_written",
            "journal_rotations",
            "journal_torn_lines_skipped",
            "journal_write_errors",
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Flush and close; idempotent. Further records are dropped."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.flush()
                self._file.close()
            except OSError:
                pass

    def __enter__(self) -> "OpsJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
