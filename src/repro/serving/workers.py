"""Shard worker: the subprocess half of :class:`ProcessShardExecutor`.

Each worker owns one fingerprint-shard of the kernel population: a private
:class:`~repro.autotuner.LearnedEvaluator` (with its feature/prediction
memos and precompute cache) rebuilt from checkpoint blob bytes whenever
the parent ships a new version. Workers communicate over a
``multiprocessing`` pipe with small tagged tuples:

* ``("load", version, blob)`` — deserialize ``blob`` (the exact bytes of
  :meth:`ModelRegistry.blob`) and serve it; replies ``("ok", version)``.
  Evaluators are kept per version in a small LRU (``max_live_versions``),
  so a rollout alternating active- and staged-version batches reuses
  warm state instead of rebuilding the model every switch.
* ``("use", version)`` — switch to an already-loaded version's warm
  evaluator without shipping the blob again; replies ``("ok", version)``
  or ``("miss", version)`` when the LRU evicted it (the parent then falls
  back to a full ``load`` — the same miss/retry contract as kernel
  interning).
* ``("warm", version, blob)`` — deserialize ``blob`` into the per-version
  LRU **without** switching the current evaluator; replies
  ``("ok", version)``. Placement migrations use this to sync a freshly
  spawned shard worker to every live (active + staged) version before
  the shard map swaps traffic onto it.
* ``("tiles", fingerprint, kernel_or_None, dims_list)`` — score candidate
  tiles (tile configs cross the pipe as raw dims tuples). Kernels are
  *interned* by fingerprint on first sight so the steady-state request
  carries only the fingerprint string instead of a re-pickled graph; a
  worker that has evicted the kernel replies ``("miss", fingerprint)``
  and the parent retries with the kernel attached.
* ``("tile_batch", entries)`` — score several kernels' candidate tiles
  in **one** fused multi-kernel forward (``entries`` is a list of
  ``(fingerprint, kernel_or_None, dims_list)``); replies
  ``("ok", arrays)`` with one score array per entry, or
  ``("miss", fingerprints)`` listing every unresolved kernel. This is
  the shard's batching policy: a whole micro-batch slice costs one
  forward and one pipe round trip.
* ``("programs", entries)`` — price candidate programs; every kernel
  crosses as ``(fingerprint, kernel_or_None)`` through the same
  interning, with ``("miss", fingerprints)`` listing unresolved kernels.
* ``("stats", )`` — evaluator cache counters + interning size.
* ``("exit", )`` — clean shutdown.

The three forward-executing ops (``tiles``, ``tile_batch``,
``programs``) accept an optional trailing ``(trace_id, parent_span_id)``
telemetry token; when present the reply carries a third element — a list
of plain span dicts timing the forward inside this process — which the
parent records into its tracer. Untraced messages and replies keep their
exact pre-telemetry shapes.

Replies are ``("ok", value)`` / ``("err", traceback_string)`` /
``("miss", fingerprint)``. Score arrays cross the pipe as pickled numpy
arrays — dtype and bytes preserved exactly, which is what keeps
process-sharded serving bitwise-identical to in-thread serving at equal
batch shape.

The module is import-light at top level so a ``spawn``-started worker
boots quickly; heavyweight imports happen inside :func:`shard_worker`.
"""
from __future__ import annotations

from collections import OrderedDict


def shard_worker(
    conn,
    max_cached_kernels: int = 1024,
    max_live_versions: int = 2,
    shard_index: int = 0,
    fault_plan=None,
) -> None:
    """Serve shard requests on ``conn`` until EOF or an ``exit`` message.

    Args:
        conn: child end of a ``multiprocessing.Pipe``.
        max_cached_kernels: evaluator cache bound, and the bound on the
            fingerprint -> kernel interning map.
        max_live_versions: warm per-version evaluators kept (LRU); 2
            serves a rollout's active + staged pair without thrash.
        shard_index: this worker's shard number (fault-rule targeting).
        fault_plan: optional :class:`~repro.serving.faults.FaultPlan`
            restricted to ``worker.`` hooks; a fresh injector is built
            per process (counters restart with each respawn — exact
            cross-respawn fault counts belong on the parent-side hooks).
    """
    import os
    import time
    import traceback

    import numpy as np

    from ..autotuner.evaluators import LearnedEvaluator
    from ..compiler.tiling import TileConfig
    from .protocol import lru_touch

    injector = None
    if fault_plan is not None and fault_plan.rules:
        from .faults import FaultInjector

        injector = FaultInjector(fault_plan)

    def forward_fault() -> None:
        """Fire ``worker.forward`` before a forward-executing op: ``kill``
        exits the process mid-request (the parent sees a dead pipe),
        ``hang`` sleeps ``delay_s`` (or effectively forever — the
        parent's watchdog resolves it), ``delay`` adds latency."""
        rule = injector.fire("worker.forward", shard=shard_index)
        if rule is None:
            return
        if rule.kind == "kill":
            os._exit(1)
        elif rule.kind == "hang":
            time.sleep(rule.delay_s or 3600.0)
        elif rule.kind == "delay" and rule.delay_s > 0:
            time.sleep(rule.delay_s)

    def tile_configs(dims_list):
        """Rebuild TileConfigs from the raw dims tuples on the wire."""
        return [TileConfig(dims=tuple(d)) for d in dims_list]

    def forward_span(trace, started, op):
        """A plain span dict for one traced forward — the worker never
        holds a tracer; the parent re-parents this into each sampled
        request's trace via ``Tracer.record_raw``."""
        return {
            "trace_id": trace[0],
            "parent_id": trace[1],
            "name": "worker.forward",
            "start": started,
            "end": time.time(),
            "process": f"worker-{shard_index}",
            "attrs": {"pid": os.getpid(), "op": op},
        }

    def ok_reply(value, trace, started, op):
        """``("ok", value)`` — plus the forward span for traced messages.
        Untraced replies keep the exact pre-telemetry two-tuple shape."""
        if trace is None:
            return ("ok", value)
        return ("ok", value, [forward_span(trace, started, op)])

    evaluator: LearnedEvaluator | None = None
    version: str | None = None
    evaluators: OrderedDict[str, LearnedEvaluator] = OrderedDict()
    interned: OrderedDict[str, object] = OrderedDict()

    def intern(fingerprint, kernel):
        """Remember ``kernel`` under ``fingerprint`` (LRU-bounded)."""
        if kernel is None:
            kernel = interned.get(fingerprint)
            if kernel is None:
                return None
        lru_touch(interned, fingerprint, kernel, max_cached_kernels)
        return kernel

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        op = message[0]
        try:
            if op == "load":
                _, new_version, blob = message
                evaluator = LearnedEvaluator.from_checkpoint_bytes(
                    blob, max_cached_kernels=max_cached_kernels
                )
                lru_touch(evaluators, new_version, evaluator, max_live_versions)
                version = new_version
                conn.send(("ok", version))
            elif op == "warm":
                _, warm_version, blob = message
                warmed = evaluators.get(warm_version)
                if warmed is None:
                    warmed = LearnedEvaluator.from_checkpoint_bytes(
                        blob, max_cached_kernels=max_cached_kernels
                    )
                lru_touch(evaluators, warm_version, warmed, max_live_versions)
                if version is not None and version not in evaluators:
                    # Never let warming evict the version that is
                    # currently serving: re-touch it most-recent.
                    lru_touch(evaluators, version, evaluator, max_live_versions)
                conn.send(("ok", warm_version))
            elif op == "use":
                _, target = message
                cached = evaluators.get(target)
                if cached is None:
                    conn.send(("miss", target))
                    continue
                lru_touch(evaluators, target, cached, max_live_versions)
                evaluator = cached
                version = target
                conn.send(("ok", version))
            elif op == "tiles":
                # A 5th element is the optional (trace_id, parent_span)
                # token — absent on untraced messages (old shape).
                _, fingerprint, kernel, dims_list = message[:4]
                trace = message[4] if len(message) > 4 else None
                kernel = intern(fingerprint, kernel)
                if kernel is None:
                    conn.send(("miss", fingerprint))
                    continue
                if evaluator is None:
                    conn.send(("err", "no checkpoint loaded"))
                    continue
                if injector is not None:
                    forward_fault()
                started = time.time() if trace is not None else 0.0
                scores = evaluator.score_tiles_batched(
                    kernel, tile_configs(dims_list)
                )
                conn.send(ok_reply(np.asarray(scores), trace, started, op))
            elif op == "tile_batch":
                _, entries = message[:2]
                trace = message[2] if len(message) > 2 else None
                resolved: list[tuple[object, list]] = []
                missing: list[str] = []
                for fingerprint, kernel, dims_list in entries:
                    kernel = intern(fingerprint, kernel)
                    if kernel is None:
                        missing.append(fingerprint)
                    else:
                        resolved.append((kernel, tile_configs(dims_list)))
                if missing:
                    conn.send(("miss", missing))
                    continue
                if evaluator is None:
                    conn.send(("err", "no checkpoint loaded"))
                    continue
                if injector is not None:
                    forward_fault()
                started = time.time() if trace is not None else 0.0
                arrays = evaluator.score_tile_groups(resolved)
                conn.send(ok_reply(
                    [np.asarray(a) for a in arrays], trace, started, op
                ))
            elif op == "programs":
                _, entries = message[:2]
                trace = message[2] if len(message) > 2 else None
                programs = []
                missing: list[str] = []
                for kernel_entries in entries:
                    resolved = []
                    for fingerprint, kernel in kernel_entries:
                        kernel = intern(fingerprint, kernel)
                        if kernel is None:
                            missing.append(fingerprint)
                        else:
                            resolved.append(kernel)
                    programs.append(resolved)
                if missing:
                    conn.send(("miss", missing))
                    continue
                if evaluator is None:
                    conn.send(("err", "no checkpoint loaded"))
                    continue
                if injector is not None:
                    forward_fault()
                started = time.time() if trace is not None else 0.0
                runtimes = evaluator.program_runtimes_batched(programs)
                conn.send(ok_reply(np.asarray(runtimes), trace, started, op))
            elif op == "stats":
                payload = dict(evaluator.stats()) if evaluator is not None else {}
                payload["interned_kernels"] = len(interned)
                payload["version"] = version
                payload["live_versions"] = len(evaluators)
                conn.send(("ok", payload))
            elif op == "exit":
                return
            else:
                conn.send(("err", f"unknown worker op {op!r}"))
        except Exception:
            try:
                conn.send(("err", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                return
