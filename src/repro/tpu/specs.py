"""TPU hardware target descriptions.

Parameters approximate one core of TPU v2 and v3 at the level of detail the
cost models need: clock, HBM bandwidth, number of 128x128 systolic-array
matrix units, vector lanes, scratchpad capacity and vector register file
size. TPU v3 has higher memory bandwidth and twice as many matrix units as
v2 (paper Sec. 2.1), which is exactly how the two specs below differ.
"""
from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TpuTarget:
    """One TPU core as seen by the performance models.

    Attributes:
        name: target identifier ("tpu_v2", "tpu_v3").
        clock_ghz: core clock in GHz.
        hbm_bandwidth_gbps: nominal HBM bandwidth in GB/s.
        mxu_count: number of 128x128 systolic matrix units.
        vector_lanes: VPU lane count (elements per vector issue).
        sublanes: vector register sublane count (second-minor granularity).
        scratchpad_bytes: software-managed on-chip memory capacity.
        vector_registers: architectural 2D vector registers available to the
            register allocator (drives the spill model).
        transfer_latency_ns: fixed DMA setup latency per tile transfer.
    """

    name: str
    clock_ghz: float
    hbm_bandwidth_gbps: float
    mxu_count: int
    vector_lanes: int = 128
    sublanes: int = 8
    scratchpad_bytes: int = 16 * 1024 * 1024
    vector_registers: int = 64
    transfer_latency_ns: float = 500.0

    @property
    def peak_matmul_flops(self) -> float:
        """Peak MXU FLOP/s (2 flops per MAC per cell per cycle)."""
        return self.mxu_count * 2.0 * 128 * 128 * self.clock_ghz * 1e9

    @property
    def peak_vector_flops(self) -> float:
        """Peak VPU FLOP/s."""
        return self.vector_lanes * self.sublanes * self.clock_ghz * 1e9

    @property
    def hbm_bandwidth_bps(self) -> float:
        """Nominal HBM bandwidth in bytes/second."""
        return self.hbm_bandwidth_gbps * 1e9


TPU_V2 = TpuTarget(
    name="tpu_v2",
    clock_ghz=0.70,
    hbm_bandwidth_gbps=300.0,
    mxu_count=1,
)

TPU_V3 = TpuTarget(
    name="tpu_v3",
    clock_ghz=0.94,
    hbm_bandwidth_gbps=450.0,
    mxu_count=2,
)

TARGETS: dict[str, TpuTarget] = {t.name: t for t in (TPU_V2, TPU_V3)}


def get_target(name: str) -> TpuTarget:
    """Look up a target by name.

    Raises:
        KeyError: if the name is unknown.
    """
    return TARGETS[name]
