"""TPU substrate: hardware targets, analytical baseline, ground-truth simulator."""
from .analytical import (
    AnalyticalBreakdown,
    AnalyticalModel,
    CalibratedAnalyticalModel,
    calibrate_kind_scales,
)
from .simulator import SimBreakdown, TpuSimulator
from .specs import TARGETS, TPU_V2, TPU_V3, TpuTarget, get_target

__all__ = [
    "TARGETS",
    "TPU_V2",
    "TPU_V3",
    "AnalyticalBreakdown",
    "AnalyticalModel",
    "CalibratedAnalyticalModel",
    "SimBreakdown",
    "TpuSimulator",
    "TpuTarget",
    "calibrate_kind_scales",
    "get_target",
]
