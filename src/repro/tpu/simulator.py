"""Ground-truth TPU performance simulator.

This module stands in for the real TPU v2/v3 hardware that the paper
measured kernels on. It prices a (kernel, tile) pair with a richer model
than :mod:`repro.tpu.analytical`, deliberately including every effect the
paper lists as *missing* from the analytical model (Appendix A):

  1. size-dependent effective bandwidth with per-transfer DMA latency;
  2. MXU/VPU utilization losses from tile misalignment to the 128-lane
     vector width and 8-sublane register granularity;
  3. bi-directional transfer contention (copy-in of the next tile competes
     with copy-out of the previous one);
  4. resource-constrained instruction scheduling (functional-unit
     contention and issue stalls) via the list scheduler;
  5. register-pressure spills when the live-tensor peak exceeds the
     architectural vector registers;
  6. imperfect compute/transfer pipelining;
  7. a deterministic per-(kernel, tile-bucket) "hardware quirk" term for
     poorly-understood architectural characteristics (paper Sec. 2.3a).

Runtimes are deterministic given (kernel, tile, target); measurement noise
is added only by :meth:`TpuSimulator.measure`, which mimics the paper's
"minimum runtime from three runs" protocol.
"""
from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..compiler.kernels import Kernel
from ..compiler.scheduling import list_schedule, live_tensor_peak
from ..compiler.tiling import TileConfig, default_tile, tile_transfer_bytes
from .specs import TpuTarget, TPU_V2


@dataclass(frozen=True)
class SimBreakdown:
    """Per-component decomposition of one simulated runtime.

    Attributes:
        iterations: tile iterations covering the output.
        transfer_in: per-iteration copy-in seconds (after bandwidth model).
        transfer_out: per-iteration copy-out seconds.
        compute: per-iteration compute seconds (after utilization/spills).
        loop_overhead: per-iteration loop bookkeeping seconds.
        quirk: multiplicative hardware-quirk factor applied at the end.
        total: final runtime in seconds.
    """

    iterations: int
    transfer_in: float
    transfer_out: float
    compute: float
    loop_overhead: float
    quirk: float
    total: float


def _stable_unit_float(*parts: object) -> float:
    """Deterministic float in [0, 1) from a hash of the parts."""
    h = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(h[:8], "little") / 2**64


class TpuSimulator:
    """Deterministic performance simulator for one TPU target.

    Args:
        target: hardware description.
        quirk_amplitude: relative amplitude of the per-kernel hardware
            quirk term (0 disables it).
    """

    #: Imperfect compute/transfer overlap: the shorter phase still costs
    #: this fraction of itself on top of the longer phase.
    PIPELINE_LEAK = 0.15
    #: Fraction of the smaller opposing transfer that contends with the
    #: larger one on the HBM bus.
    BIDIRECTIONAL_CONTENTION = 0.6
    #: Cycles of loop bookkeeping per tile iteration.
    LOOP_OVERHEAD_CYCLES = 220.0
    #: Kernel launch overhead in seconds.
    LAUNCH_OVERHEAD_S = 1.8e-6
    #: Spill penalty per live tensor beyond the register file, as a
    #: fraction of compute time.
    SPILL_PENALTY = 0.03

    def __init__(self, target: TpuTarget = TPU_V2, quirk_amplitude: float = 0.12) -> None:
        self.target = target
        self.quirk_amplitude = quirk_amplitude
        # Schedule length and live-tensor peak scale linearly with (or are
        # independent of) the tile fraction, so the unit-scale results are
        # cached per kernel fingerprint across tile sweeps.
        self._sched_cache: dict[str, tuple[float, int]] = {}

    def _unit_schedule(self, kernel: Kernel) -> tuple[float, int]:
        """(unit-scale schedule length in cycles, live-tensor peak)."""
        fp = kernel.fingerprint()
        hit = self._sched_cache.get(fp)
        if hit is None:
            sched = list_schedule(kernel.graph, scale=1.0)
            hit = (sched.length_cycles, live_tensor_peak(kernel.graph))
            self._sched_cache[fp] = hit
        return hit

    # -------------------------------------------------------------- plumbing
    def _effective_bandwidth(self, transfer_bytes: float) -> float:
        """Bytes/s achieved for one transfer of the given size.

        Small transfers are dominated by DMA setup latency, so achieved
        bandwidth ramps up with size (Appendix A point 3: "larger transfers
        are more efficient").
        """
        if transfer_bytes <= 0:
            return self.target.hbm_bandwidth_bps
        latency_s = self.target.transfer_latency_ns * 1e-9
        ideal_t = transfer_bytes / self.target.hbm_bandwidth_bps
        return transfer_bytes / (ideal_t + latency_s)

    def _alignment_utilization(self, kernel: Kernel, tile: TileConfig) -> float:
        """Fraction of peak compute achieved given tile alignment.

        The minor dimension packs into 128-wide lanes and the second-minor
        into 8 sublanes; a tile of 130 x 9 wastes almost half of each
        vector issue. MXU kernels are additionally sensitive to the minor
        dim reaching the 128x128 array width.
        """
        output = kernel.primary_output().shape
        if not tile.dims:
            return 1.0
        order = output.layout.minor_to_major
        minor = tile.dims[order[0]]
        lanes = self.target.vector_lanes
        util = minor / (np.ceil(minor / lanes) * lanes)
        if len(order) > 1:
            second = tile.dims[order[1]]
            sub = self.target.sublanes
            util *= second / (np.ceil(second / sub) * sub)
        return float(max(util, 0.05))

    def _quirk(self, kernel: Kernel, tile: TileConfig) -> float:
        """Deterministic multiplicative hardware-quirk factor.

        Composed of a per-kernel component and a smaller per-tile-bucket
        component, so it perturbs both absolute runtimes (hurting the
        analytical fusion baseline) and within-kernel tile rankings
        (hurting the analytical tile baseline) — while remaining a pure
        function of the inputs that a learned model can fit.
        """
        if self.quirk_amplitude <= 0:
            return 1.0
        fp = kernel.fingerprint()
        per_kernel = _stable_unit_float(self.target.name, fp)
        bucket = tuple(int(np.log2(max(d, 1))) for d in tile.dims)
        per_tile = _stable_unit_float(self.target.name, fp, bucket)
        amp = self.quirk_amplitude
        return float(
            (1.0 + amp * (2.0 * per_kernel - 1.0))
            * (1.0 + 0.5 * amp * (2.0 * per_tile - 1.0))
        )

    def _transfer_alignment(self, kernel: Kernel, tile: TileConfig) -> float:
        """Fraction of DMA bandwidth achieved given tile alignment.

        Scratchpad is written in lane-width words: a tile whose minor
        extent is not a multiple of the 128-lane width pads every row of
        the transfer, wasting bandwidth. The analytical model does not
        know this (Appendix A limitation (i)/(iv) territory), so it is one
        of the tile-dependent behaviours only visible in measurements.
        """
        output = kernel.primary_output().shape
        if not tile.dims:
            return 1.0
        order = output.layout.minor_to_major
        minor_idx = order[0]
        minor = tile.dims[minor_idx]
        full = output.dims[minor_idx]
        if minor >= full:
            return 1.0  # whole rows stream contiguously
        lanes = self.target.vector_lanes
        eff = minor / (np.ceil(minor / lanes) * lanes)
        # Padding wastes bandwidth sub-linearly (the DMA engine coalesces
        # neighbouring rows); sqrt softens the raw ratio, floored so tiny
        # tiles stay clearly costly without being absurd.
        return float(max(np.sqrt(eff), 0.3))

    # -------------------------------------------------------------- interface
    def breakdown(self, kernel: Kernel, tile: TileConfig) -> SimBreakdown:
        """Full per-component simulation of one (kernel, tile) pair."""
        output = kernel.primary_output().shape
        iterations = tile.iterations(output)
        in_bytes, out_bytes = tile_transfer_bytes(kernel, tile)

        dma_eff = self._transfer_alignment(kernel, tile)
        t_in = in_bytes / (self._effective_bandwidth(in_bytes) * dma_eff)
        t_out = out_bytes / (self._effective_bandwidth(out_bytes) * dma_eff)
        # (3) bidirectional contention: in and out DMAs share the HBM bus.
        transfer = max(t_in, t_out) + self.BIDIRECTIONAL_CONTENTION * min(t_in, t_out)

        # (4) resource-constrained schedule of one tile iteration.
        tile_fraction = tile.volume / max(output.num_elements, 1)
        unit_cycles, peak = self._unit_schedule(kernel)
        clock_hz = self.target.clock_ghz * 1e9
        util = self._alignment_utilization(kernel, tile)
        compute = unit_cycles * tile_fraction / clock_hz / util / self.target.mxu_count

        # (5) register spills.
        excess = max(0, peak - self.target.vector_registers)
        compute *= 1.0 + self.SPILL_PENALTY * excess

        loop = self.LOOP_OVERHEAD_CYCLES / clock_hz
        # (6) imperfect pipelining of compute with transfers.
        per_iter = (
            max(compute, transfer)
            + self.PIPELINE_LEAK * min(compute, transfer)
            + loop
        )
        quirk = self._quirk(kernel, tile)
        total = (iterations * per_iter + self.LAUNCH_OVERHEAD_S) * quirk
        return SimBreakdown(
            iterations=iterations,
            transfer_in=t_in,
            transfer_out=t_out,
            compute=compute,
            loop_overhead=loop,
            quirk=quirk,
            total=total,
        )

    def run(self, kernel: Kernel, tile: TileConfig | None = None) -> float:
        """Noise-free runtime in seconds (deterministic)."""
        tile = tile or default_tile(kernel)
        return self.breakdown(kernel, tile).total

    def measure(
        self,
        kernel: Kernel,
        tile: TileConfig | None = None,
        rng: np.random.Generator | None = None,
        runs: int = 3,
        noise_sigma: float = 0.02,
    ) -> float:
        """Measured runtime: minimum of ``runs`` noisy executions.

        Mirrors the paper's data-collection protocol ("the runtime target
        for each sample is the minimum runtime from three runs").
        """
        base = self.run(kernel, tile)
        if rng is None or runs <= 0 or noise_sigma <= 0:
            return base
        noise = rng.lognormal(mean=0.0, sigma=noise_sigma, size=runs)
        return float(base * noise.min())

    def run_program(
        self,
        kernels: list[Kernel],
        tiles: list[TileConfig] | None = None,
    ) -> float:
        """Whole-program runtime: the sum of kernel runtimes.

        TPUs execute one kernel at a time with no inter-kernel caching, so
        program runtime is additive over kernels (paper Sec. 2.1).
        """
        if tiles is None:
            tiles = [default_tile(k) for k in kernels]
        return sum(self.run(k, t) for k, t in zip(kernels, tiles))
