"""The hand-tuned analytical performance model (paper Sec. 2.3, Appendix A).

Estimates a kernel's runtime for a given tile size as

    iterations * max(data_transfer_time, compute_time) + overhead

assuming perfect overlap of compute with copy-in/copy-out. This is the
baseline the learned model is compared against, and it deliberately carries
the blind spots the paper documents:

  (i)   bi-directional transfer contention is not modelled (copy-in and
        copy-out are summed against nominal bandwidth);
  (ii)  instruction scheduling is approximated by the dependence critical
        path, ignoring functional-unit contention;
  (iii) register usage (spills) is not modelled at all;
  (iv)  dynamic issue stalls are not modelled;
  (v)   per-kernel hardware quirks are unknown to it.

For the fusion task, the model's per-kind output scale is calibrated with
:func:`calibrate_kind_scales` exactly as the paper does — by executing each
test program once under a default configuration and fitting one coefficient
per kernel type.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..compiler.kernels import KERNEL_KINDS, Kernel
from ..compiler.scheduling import critical_path
from ..compiler.tiling import TileConfig, default_tile, tile_transfer_bytes
from .specs import TpuTarget, TPU_V2


@dataclass(frozen=True)
class AnalyticalBreakdown:
    """Intermediate quantities of one analytical estimate (for debugging).

    Attributes:
        iterations: number of tile iterations.
        transfer_time: per-iteration data transfer seconds.
        compute_time: per-iteration compute seconds.
        overhead: fixed per-kernel launch overhead seconds.
        total: final runtime estimate in seconds.
    """

    iterations: int
    transfer_time: float
    compute_time: float
    overhead: float
    total: float


class AnalyticalModel:
    """XLA-style analytical tile-size cost model.

    Args:
        target: hardware target the estimates are for.
    """

    #: Heuristic bandwidth efficiency for small transfers: effective
    #: bandwidth = nominal * size / (size + ramp). Tuned once, per the
    #: paper's description of heuristics "chosen by tuning the performance
    #: model on a set of benchmark programs".
    BANDWIDTH_RAMP_BYTES = 64 * 1024
    #: Fixed kernel launch overhead (seconds).
    LAUNCH_OVERHEAD_S = 2e-6

    def __init__(self, target: TpuTarget = TPU_V2) -> None:
        self.target = target
        # Critical path scales linearly with the tile fraction; cache the
        # unit-scale value per kernel across tile sweeps.
        self._cp_cache: dict[str, float] = {}

    def _unit_critical_path(self, kernel: Kernel) -> float:
        fp = kernel.fingerprint()
        if fp not in self._cp_cache:
            self._cp_cache[fp] = critical_path(kernel.graph, scale=1.0)
        return self._cp_cache[fp]

    # ------------------------------------------------------------- estimates
    def breakdown(self, kernel: Kernel, tile: TileConfig) -> AnalyticalBreakdown:
        """Full per-component estimate for one (kernel, tile) pair."""
        output = kernel.primary_output().shape
        iterations = tile.iterations(output)
        in_bytes, out_bytes = tile_transfer_bytes(kernel, tile)

        # (i) uni-directional bandwidth assumption: in + out share nothing.
        size = in_bytes + out_bytes
        eff_bw = self.target.hbm_bandwidth_bps * (
            size / (size + self.BANDWIDTH_RAMP_BYTES)
        )
        # Hand-tuned heuristic for narrow tiles: transfers of tiles whose
        # minor extent is small achieve lower bandwidth. This is a smooth
        # approximation of the hardware's lane-padding sawtooth — close
        # enough to work well in practice, wrong in the details (the gap
        # the learned model exploits).
        minor = tile.dims[output.layout.minor_to_major[0]] if tile.dims else 1
        eff_bw *= min(1.0, max(minor / 64.0, 0.125))
        transfer = size / max(eff_bw, 1.0)

        # (ii) compute = dependence critical path of one tile iteration,
        # scaled by tile fraction; no unit contention.
        tile_fraction = tile.volume / max(output.num_elements, 1)
        cp_cycles = self._unit_critical_path(kernel) * tile_fraction
        compute = cp_cycles / (self.target.clock_ghz * 1e9) / self.target.mxu_count

        total = iterations * max(transfer, compute) + self.LAUNCH_OVERHEAD_S
        return AnalyticalBreakdown(
            iterations=iterations,
            transfer_time=transfer,
            compute_time=compute,
            overhead=self.LAUNCH_OVERHEAD_S,
            total=total,
        )

    def estimate(self, kernel: Kernel, tile: TileConfig) -> float:
        """Estimated runtime in seconds for a (kernel, tile) pair.

        Raises:
            ValueError: for kernels without tile-size options — the real
                analytical model does not support them (paper Sec. 5.2).
        """
        if not kernel.has_tile_options():
            raise ValueError(
                "analytical model does not support kernels without tile-size "
                f"options (kind={kernel.kind!r})"
            )
        return self.breakdown(kernel, tile).total

    def best_tile(self, kernel: Kernel, tiles: list[TileConfig]) -> TileConfig:
        """The tile size this model would select (minimum estimate)."""
        return min(tiles, key=lambda t: self.estimate(kernel, t))

    def rank_tiles(self, kernel: Kernel, tiles: list[TileConfig]) -> list[TileConfig]:
        """Tiles sorted from best to worst estimated runtime."""
        return sorted(tiles, key=lambda t: self.estimate(kernel, t))


def calibrate_kind_scales(
    kernels: list[Kernel],
    measured: list[float],
    model: AnalyticalModel,
) -> dict[str, float]:
    """Fit one output-scale coefficient per kernel kind.

    The paper (Sec. 5.2): "we scale the analytical model's output with a
    coefficient associated with the kernel's type ... determined by executing
    each program in the test set with a default fusion configuration, and
    dividing the actual total runtime for all kernels of each type by the
    estimate in its original scale."

    Args:
        kernels: kernels of the calibration (default-config) runs.
        measured: true runtimes aligned with ``kernels``.
        model: the analytical model being calibrated.

    Returns:
        kind -> multiplicative coefficient; kinds with no supported kernels
        get 1.0.
    """
    sums: dict[str, list[float]] = {k: [0.0, 0.0] for k in KERNEL_KINDS}
    for kernel, true_time in zip(kernels, measured):
        if not kernel.has_tile_options():
            continue
        est = model.estimate(kernel, default_tile(kernel))
        sums[kernel.kind][0] += true_time
        sums[kernel.kind][1] += est
    return {
        kind: (acc[0] / acc[1] if acc[1] > 0 else 1.0) for kind, acc in sums.items()
    }


class CalibratedAnalyticalModel:
    """Analytical model with per-kind absolute-scale calibration.

    This is the fusion-task baseline: raw analytical estimates are only
    meaningful for ranking tiles within one kernel; multiplying by the
    calibrated per-kind coefficient turns them into absolute runtimes.
    """

    def __init__(self, model: AnalyticalModel, kind_scales: dict[str, float]) -> None:
        self.model = model
        self.kind_scales = dict(kind_scales)

    def estimate(self, kernel: Kernel, tile: TileConfig | None = None) -> float:
        """Absolute runtime estimate in seconds.

        Raises:
            ValueError: for kernels without tile-size options (unsupported).
        """
        tile = tile or default_tile(kernel)
        raw = self.model.estimate(kernel, tile)
        return raw * self.kind_scales.get(kernel.kind, 1.0)
