"""The 104-program corpus and its train/validation/test splits.

The paper's dataset is 104 proprietary XLA programs "used in production or
commonly in research", with two splitting regimes: a *random* split and a
*manual* split whose test programs were chosen to be maximally dissimilar
from the training set. This module reproduces the corpus shape with
parametric generators: the same model families, the same imbalance (many
ResNet/Inception variants vs. a single AlexNet/DLRM), and splits whose test
rows match the applications reported in Table 2 (random) and Table 8
(manual).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..hlo.graph import Program
from . import sequence, tabular, vision

#: (family generator, number of seeded variants) — 104 programs total.
FAMILY_SPEC: list[tuple[Callable[[int], Program], int]] = [
    (vision.resnet_v1, 14),
    (vision.resnet_v2, 12),
    (vision.inception, 16),
    (vision.alexnet, 1),
    (vision.ssd, 5),
    (vision.convdraw, 2),
    (vision.image_embed, 4),
    (vision.resnet_parallel, 2),
    (sequence.rnn, 6),
    (sequence.wavernn, 6),
    (sequence.nmt, 6),
    (sequence.translate, 8),
    (sequence.transformer, 6),
    (sequence.smartcompose, 3),
    (sequence.autocompletion, 2),
    (sequence.char2feats, 3),
    (sequence.feats2wave, 3),
    (tabular.dlrm, 1),
    (tabular.ranking, 4),
]

#: Table 2 test applications (random split) -> (family, variant).
RANDOM_TEST_PROGRAMS: dict[str, tuple[str, int]] = {
    "ConvDRAW": ("convdraw", 0),
    "WaveRNN": ("wavernn", 0),
    "NMT Model": ("nmt", 0),
    "SSD": ("ssd", 0),
    "RNN": ("rnn", 0),
    "ResNet v1": ("resnet_v1", 0),
    "ResNet v2": ("resnet_v2", 0),
    "Translate": ("translate", 0),
}

#: Table 8 test applications (manual split) -> (family, variant).
MANUAL_TEST_PROGRAMS: dict[str, tuple[str, int]] = {
    "Ranking": ("ranking", 0),
    "Feats2Wave": ("feats2wave", 0),
    "ImageEmbed": ("image_embed", 0),
    "SmartCompose": ("smartcompose", 0),
    "WaveRNN 1": ("wavernn", 0),
    "WaveRNN 2": ("wavernn", 1),
}

#: Families entirely held out of training under the manual split (the split
#: was chosen "to minimize the subjective similarity of programs between the
#: training and other two sets").
MANUAL_HELDOUT_FAMILIES = {"ranking", "feats2wave", "image_embed", "smartcompose"}


def build_corpus() -> list[Program]:
    """Instantiate all 104 programs (deterministic)."""
    programs: list[Program] = []
    for generator, count in FAMILY_SPEC:
        for variant in range(count):
            programs.append(generator(variant))
    return programs


@dataclass
class Split:
    """A train/validation/test partition of the corpus.

    Attributes:
        name: "random" or "manual".
        train / validation / test: disjoint program lists.
        test_names: display name -> program, matching the paper's table rows.
    """

    name: str
    train: list[Program]
    validation: list[Program]
    test: list[Program]
    test_names: dict[str, Program] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [p.name for p in self.train + self.validation + self.test]
        if len(set(names)) != len(names):
            raise ValueError(f"split {self.name!r} has overlapping programs")


def _index(programs: list[Program]) -> dict[tuple[str, int], Program]:
    by_key: dict[tuple[str, int], Program] = {}
    counters: dict[str, int] = {}
    for p in programs:
        k = counters.get(p.family, 0)
        by_key[(p.family, k)] = p
        counters[p.family] = k + 1
    return by_key


def random_split(programs: list[Program] | None = None) -> Split:
    """The paper's random split, with Table 2's eight test applications.

    The paper partitioned programs randomly; we pin the draw so the test set
    contains exactly the application families Table 2 reports, which is what
    the benchmark harness reproduces row by row.
    """
    programs = programs or build_corpus()
    by_key = _index(programs)
    test_names = {disp: by_key[key] for disp, key in RANDOM_TEST_PROGRAMS.items()}
    test = list(test_names.values())
    test_ids = {p.name for p in test}
    rest = [p for p in programs if p.name not in test_ids]
    # Validation: one variant from eight diverse families (deterministic).
    val_families = [
        "inception", "transformer", "translate", "resnet_v1",
        "char2feats", "smartcompose", "ssd", "nmt",
    ]
    validation = []
    seen: set[str] = set()
    for fam in val_families:
        for p in rest:
            if p.family == fam and p.name not in seen and p.name not in test_ids:
                validation.append(p)
                seen.add(p.name)
                break
    train = [p for p in rest if p.name not in seen]
    return Split("random", train, validation, test, test_names)


def manual_split(programs: list[Program] | None = None) -> Split:
    """The paper's manual split: dissimilar families held out for test.

    All programs of the held-out families are excluded from training, plus
    the two WaveRNN test variants (WaveRNN trains are kept out of training
    too, so the family is unseen — matching 'chosen for their dissimilarity
    to the training set').
    """
    programs = programs or build_corpus()
    by_key = _index(programs)
    test_names = {disp: by_key[key] for disp, key in MANUAL_TEST_PROGRAMS.items()}
    test = list(test_names.values())
    test_ids = {p.name for p in test}
    heldout = MANUAL_HELDOUT_FAMILIES | {"wavernn"}
    rest = [p for p in programs if p.name not in test_ids and p.family not in heldout]
    val_families = [
        "inception", "transformer", "translate", "resnet_v2",
        "char2feats", "rnn", "ssd", "convdraw",
    ]
    validation = []
    seen: set[str] = set()
    for fam in val_families:
        for p in rest:
            if p.family == fam and p.name not in seen:
                validation.append(p)
                seen.add(p.name)
                break
    train = [p for p in rest if p.name not in seen]
    return Split("manual", train, validation, test, test_names)
