"""Sequence model-family generators (RNN / attention workloads)."""
from __future__ import annotations

from ..hlo.builder import GraphBuilder
from ..hlo.graph import Program
from .blocks import (
    mlp,
    self_attention,
    sequence_embedding,
    transformer_layer,
    unrolled_lstm,
)


def rnn(variant: int = 0) -> Program:
    """Plain unrolled LSTM language model."""
    steps = 4 + variant % 3
    hidden = 128 * (1 + variant % 3)
    batch = 16
    b = GraphBuilder(f"rnn_{variant}")
    emb = sequence_embedding(b, batch, steps, vocab=4000, dim=hidden)
    xs = [
        b.reshape(b.slice(emb, (0, t, 0), (batch, t + 1, hidden)), (batch, hidden))
        for t in range(steps)
    ]
    hs = unrolled_lstm(b, xs, hidden, batch)
    logits = mlp(b, hs[-1], [hidden, 4000], final_activation=None)
    return Program(b.graph.name, b.build([logits]), family="rnn")


def wavernn(variant: int = 0) -> Program:
    """WaveRNN-like autoregressive audio model: GRU-ish core + dual softmax."""
    hidden = 256 * (1 + variant % 2)
    batch = 16
    steps = 3 + variant % 3
    b = GraphBuilder(f"wavernn_{variant}")
    cond = b.parameter((batch, hidden), name="conditioning")
    x = b.parameter((batch, hidden), name="samples")
    h = b.constant((batch, hidden), name="h0")
    for _ in range(steps):
        xh = b.concatenate([x, h, cond], dim=1)
        u = b.logistic(b.dense(xh, hidden, activation=None))
        r = b.logistic(b.dense(xh, hidden, activation=None))
        cand = b.tanh(b.dense(b.concatenate([x, b.multiply(r, h)], dim=1), hidden, activation=None))
        one = b.constant((), name="one")
        oneb = b.broadcast_scalar(one, (batch, hidden))
        h = b.add(b.multiply(u, h), b.multiply(b.subtract(oneb, u), cand))
    coarse = mlp(b, h, [hidden, 1024], final_activation=None)
    fine = mlp(b, h, [hidden, 1024], final_activation=None)
    c_sm = b.softmax(coarse)
    f_sm = b.softmax(fine)
    return Program(b.graph.name, b.build([c_sm, f_sm]), family="wavernn")


def nmt(variant: int = 0) -> Program:
    """NMT-like encoder-decoder LSTM with additive attention."""
    hidden = 128 * (1 + variant % 2)
    batch, src, tgt = 16, 4 + variant % 3, 3
    b = GraphBuilder(f"nmt_{variant}")
    src_emb = sequence_embedding(b, batch, src, vocab=4000, dim=hidden, name="src")
    xs = [
        b.reshape(b.slice(src_emb, (0, t, 0), (batch, t + 1, hidden)), (batch, hidden))
        for t in range(src)
    ]
    enc = unrolled_lstm(b, xs, hidden, batch)
    memory = b.concatenate([b.reshape(h, (batch, 1, hidden)) for h in enc], dim=1)
    tgt_emb = sequence_embedding(b, batch, tgt, vocab=4000, dim=hidden, name="tgt")
    ys = [
        b.reshape(b.slice(tgt_emb, (0, t, 0), (batch, t + 1, hidden)), (batch, hidden))
        for t in range(tgt)
    ]
    dec = unrolled_lstm(b, ys, hidden, batch)
    outs = []
    for h in dec:
        q = b.reshape(h, (batch, 1, hidden))
        scores = b.dot(q, b.transpose(memory, (0, 2, 1)))
        attn = b.softmax(scores, dim=-1)
        ctx = b.reshape(b.dot(attn, memory), (batch, hidden))
        outs.append(mlp(b, b.concatenate([h, ctx], dim=1), [hidden, 4000], final_activation=None))
    return Program(b.graph.name, b.build(outs), family="nmt")


def translate(variant: int = 0) -> Program:
    """Translate-like deep LSTM stack with residual connections."""
    hidden = 128 + 64 * (variant % 3)
    layers = 2 + variant % 2
    batch, steps = 16, 4
    b = GraphBuilder(f"translate_{variant}")
    emb = sequence_embedding(b, batch, steps, vocab=8000, dim=hidden)
    xs = [
        b.reshape(b.slice(emb, (0, t, 0), (batch, t + 1, hidden)), (batch, hidden))
        for t in range(steps)
    ]
    for _ in range(layers):
        hs = unrolled_lstm(b, xs, hidden, batch)
        xs = [b.add(x, h) for x, h in zip(xs, hs)]
    logits = mlp(b, xs[-1], [hidden, 8000], final_activation=None)
    return Program(b.graph.name, b.build([logits]), family="translate")


def transformer(variant: int = 0) -> Program:
    """Transformer encoder stack."""
    dim = 128 * (1 + variant % 2)
    layers = 2 + variant % 2
    batch, seq = 4, 16 + 8 * (variant % 2)
    b = GraphBuilder(f"transformer_{variant}")
    x = sequence_embedding(b, batch, seq, vocab=8000, dim=dim)
    for _ in range(layers):
        x = transformer_layer(b, x, dim, ff_dim=dim * 4)
    pooled = b.reduce(x, [1], kind="mean")
    logits = mlp(b, pooled, [dim, 2], final_activation=None)
    return Program(b.graph.name, b.build([logits]), family="transformer")


def smartcompose(variant: int = 0) -> Program:
    """SmartCompose-like next-phrase suggester: embeddings + LSTM + beam head."""
    hidden = 128 + 64 * (variant % 2)
    batch, steps = 16, 3 + variant % 2
    b = GraphBuilder(f"smartcompose_{variant}")
    emb = sequence_embedding(b, batch, steps, vocab=16000, dim=hidden)
    ctx = b.parameter((batch, hidden), name="context_features")
    xs = [
        b.add(
            b.reshape(b.slice(emb, (0, t, 0), (batch, t + 1, hidden)), (batch, hidden)),
            ctx,
        )
        for t in range(steps)
    ]
    hs = unrolled_lstm(b, xs, hidden, batch)
    logits = mlp(b, hs[-1], [hidden * 2, 16000], final_activation=None)
    probs = b.softmax(logits)
    return Program(b.graph.name, b.build([probs]), family="smartcompose")


def autocompletion(variant: int = 0) -> Program:
    """Small auto-completion model (the under-represented family: the paper
    notes Inception-based models have 400x more kernels than these)."""
    hidden = 32
    batch = 8
    b = GraphBuilder(f"autocompletion_{variant}")
    emb = sequence_embedding(b, batch, 2, vocab=2000, dim=hidden)
    x = b.reduce(emb, [1], kind="mean")
    logits = mlp(b, x, [hidden, 2000], final_activation=None)
    return Program(b.graph.name, b.build([logits]), family="autocompletion")


def char2feats(variant: int = 0) -> Program:
    """Char2Feats-like text-to-speech frontend: char embeddings + conv1d-ish
    dense mixing + attention pooling."""
    dim = 96 + 32 * (variant % 2)
    batch, seq = 8, 16
    b = GraphBuilder(f"char2feats_{variant}")
    x = sequence_embedding(b, batch, seq, vocab=256, dim=dim)
    x = self_attention(b, x, dim)
    x2 = b.reshape(x, (batch * seq, dim))
    feats = mlp(b, x2, [dim * 2, 80], final_activation="relu")
    out = b.reshape(feats, (batch, seq, 80))
    return Program(b.graph.name, b.build([out]), family="char2feats")


def feats2wave(variant: int = 0) -> Program:
    """Feats2Wave-like vocoder: upsampling dense stack + tanh waveform head
    (manual-split test family)."""
    dim = 160 + 64 * (variant % 2)
    batch, frames = 4, 16
    b = GraphBuilder(f"feats2wave_{variant}")
    feats = b.parameter((batch, frames, 80), name="features")
    x = b.reshape(feats, (batch * frames, 80))
    x = mlp(b, x, [dim, dim * 2], final_activation="relu")
    up = mlp(b, x, [dim * 4], final_activation="relu")
    wave = mlp(b, up, [256], final_activation="tanh")
    out = b.reshape(wave, (batch, frames * 256))
    return Program(b.graph.name, b.build([out]), family="feats2wave")
