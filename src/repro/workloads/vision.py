"""Vision model-family generators (convolutional workloads).

Each generator returns a :class:`~repro.hlo.Program`; the ``variant``
parameter perturbs depth/width/resolution deterministically so one family
yields many related-but-distinct programs, reproducing the dataset's
"many variations of ResNet models, but just one AlexNet" imbalance.
"""
from __future__ import annotations

from ..hlo.builder import GraphBuilder
from ..hlo.graph import Program
from .blocks import (
    conv_block,
    global_average_pool,
    inception_module,
    max_pool,
    mlp,
    residual_block_v1,
    residual_block_v2,
)


def _resnet(name: str, family: str, variant: int, block_fn) -> Program:
    """Shared ResNet scaffold for v1/v2 (depth/width vary with variant)."""
    depth_per_stage = 1 + variant % 3
    width = 16 * (1 + variant % 4)
    batch = 2 + 2 * (variant % 2)
    b = GraphBuilder(name)
    x = b.parameter((batch, 32, 32, 3), name="images")
    y = conv_block(b, x, width, kernel=3)
    for stage in range(3):
        strides = (1, 1) if stage == 0 else (2, 2)
        y = block_fn(b, y, width * (2**stage), strides)
        for _ in range(depth_per_stage - 1):
            y = block_fn(b, y, width * (2**stage))
    y = global_average_pool(b, y)
    logits = mlp(b, y, [max(64, width * 2), 10])
    return Program(name, b.build([logits]), family=family)


def resnet_v1(variant: int = 0) -> Program:
    """ResNet v1 classifier variant."""
    return _resnet(f"resnet_v1_{variant}", "resnet_v1", variant, residual_block_v1)


def resnet_v2(variant: int = 0) -> Program:
    """ResNet v2 (pre-activation) classifier variant."""
    return _resnet(f"resnet_v2_{variant}", "resnet_v2", variant, residual_block_v2)


def resnet_parallel(variant: int = 0) -> Program:
    """Two parallel ResNet towers with merged heads (fusion-autotuner set)."""
    b = GraphBuilder(f"resnet_parallel_{variant}")
    batch = 2 + variant % 2
    x = b.parameter((batch, 32, 32, 3), name="images")
    towers = []
    for _ in range(2):
        y = conv_block(b, x, 16, kernel=3)
        for stage in range(2):
            y = residual_block_v1(b, y, 16 * (2**stage), (2, 2) if stage else (1, 1))
        towers.append(global_average_pool(b, y))
    merged = b.concatenate(towers, dim=1)
    logits = mlp(b, merged, [128, 10])
    return Program(b.graph.name, b.build([logits]), family="resnet_parallel")


def inception(variant: int = 0) -> Program:
    """Inception-style classifier; deliberately kernel-heavy (the tile-size
    dataset's most over-represented family, per the paper's imbalance note).
    """
    modules = 3 + variant % 4
    width = 32 + 16 * (variant % 3)
    b = GraphBuilder(f"inception_{variant}")
    x = b.parameter((2, 32, 32, 3), name="images")
    y = conv_block(b, x, 16, kernel=3)
    y = max_pool(b, y)
    for m in range(modules):
        y = inception_module(b, y, width * (1 + m // 2))
        if m % 2 == 1:
            y = max_pool(b, y)
    y = global_average_pool(b, y)
    logits = mlp(b, y, [256, 100])
    return Program(b.graph.name, b.build([logits]), family="inception")


def alexnet(variant: int = 0) -> Program:
    """AlexNet-like classifier (exactly one in the corpus, as in the paper)."""
    b = GraphBuilder(f"alexnet_{variant}")
    x = b.parameter((4, 64, 64, 3), name="images")
    y = conv_block(b, x, 48, kernel=5, strides=(2, 2))
    y = max_pool(b, y)
    y = conv_block(b, y, 128, kernel=3)
    y = max_pool(b, y)
    y = conv_block(b, y, 192, kernel=3)
    y = conv_block(b, y, 128, kernel=3)
    y = max_pool(b, y)
    n, h, w, c = b.shape_of(y).dims
    flat = b.reshape(y, (n, h * w * c))
    logits = mlp(b, flat, [512, 256, 10])
    return Program(b.graph.name, b.build([logits]), family="alexnet")


def ssd(variant: int = 0) -> Program:
    """SSD-like detector: conv backbone + multi-scale box/class heads."""
    b = GraphBuilder(f"ssd_{variant}")
    width = 16 * (1 + variant % 3)
    x = b.parameter((2, 64, 64, 3), name="images")
    y = conv_block(b, x, width, kernel=3, strides=(2, 2))
    heads = []
    for scale in range(3):
        y = conv_block(b, y, width * (2**scale), kernel=3, strides=(2, 2))
        boxes = conv_block(b, y, 4 * 4, kernel=3, activation=False)
        classes = conv_block(b, y, 4 * (10 + variant % 5), kernel=3, activation=False)
        n, h, w, cb = b.shape_of(boxes).dims
        heads.append(b.reshape(boxes, (n, h * w * cb)))
        n, h, w, cc = b.shape_of(classes).dims
        heads.append(b.reshape(classes, (n, h * w * cc)))
    out = b.concatenate(heads, dim=1)
    return Program(b.graph.name, b.build([out]), family="ssd")


def convdraw(variant: int = 0) -> Program:
    """ConvDRAW-like recurrent VAE sketch: conv encoder/decoder iterated.

    Structurally unlike the classifier families (paper: ConvDRAW "differs
    more from the programs in our training set than any other program").
    """
    steps = 2 + variant % 2
    b = GraphBuilder(f"convdraw_{variant}")
    x = b.parameter((2, 32, 32, 3), name="images")
    canvas = b.constant((2, 32, 32, 3), name="canvas0")
    for _ in range(steps):
        err = b.subtract(x, b.tanh(canvas))
        h = conv_block(b, err, 32, kernel=5, strides=(2, 2))
        h = conv_block(b, h, 64, kernel=3, strides=(2, 2))
        n, hh, ww, cc = b.shape_of(h).dims
        z = mlp(b, b.reshape(h, (n, hh * ww * cc)), [128, 64], final_activation="tanh")
        d = mlp(b, z, [hh * ww * cc])
        d = b.reshape(d, (n, hh, ww, cc))
        up = b.reshape(d, (n, hh * 2, ww * 2, cc // 4))
        delta = conv_block(b, up, 3, kernel=5, activation=False)
        n2, h2, w2, c2 = b.shape_of(delta).dims
        rep = b.concatenate([delta, delta, delta, delta], dim=3)
        delta_full = b.reshape(rep, (n2, h2 * 2, w2 * 2, c2))
        canvas = b.add(canvas, delta_full)
    out = b.logistic(canvas)
    return Program(b.graph.name, b.build([out]), family="convdraw")


def image_embed(variant: int = 0) -> Program:
    """Image-embedding tower (manual-split test family 'ImageEmbed')."""
    b = GraphBuilder(f"image_embed_{variant}")
    width = 24 + 8 * (variant % 3)
    x = b.parameter((4, 48, 48, 3), name="images")
    y = conv_block(b, x, width, kernel=3, strides=(2, 2))
    y = residual_block_v1(b, y, width * 2, (2, 2))
    y = residual_block_v1(b, y, width * 4, (2, 2))
    y = global_average_pool(b, y)
    emb = mlp(b, y, [256, 128], final_activation=None)
    # L2-normalize the embedding.
    sq = b.multiply(emb, emb)
    norm = b.reduce(sq, [1], kind="sum")
    inv = b.rsqrt(norm)
    out = b.multiply(emb, b.broadcast(inv, b.shape_of(emb).dims, (0,)))
    return Program(b.graph.name, b.build([out]), family="image_embed")
