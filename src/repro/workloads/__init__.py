"""Workload corpus: parametric generators for the paper's program families."""
from . import blocks, sequence, tabular, vision
from .corpus import (
    FAMILY_SPEC,
    MANUAL_HELDOUT_FAMILIES,
    MANUAL_TEST_PROGRAMS,
    RANDOM_TEST_PROGRAMS,
    Split,
    build_corpus,
    manual_split,
    random_split,
)

__all__ = [
    "FAMILY_SPEC",
    "MANUAL_HELDOUT_FAMILIES",
    "MANUAL_TEST_PROGRAMS",
    "RANDOM_TEST_PROGRAMS",
    "Split",
    "blocks",
    "build_corpus",
    "manual_split",
    "random_split",
    "sequence",
    "tabular",
    "vision",
]
