"""Tabular / recommendation model-family generators."""
from __future__ import annotations

from ..hlo.builder import GraphBuilder
from ..hlo.graph import Program
from .blocks import embedding_lookup, mlp


def dlrm(variant: int = 0) -> Program:
    """DLRM-like recommender: sparse embeddings + dense MLP + interactions
    (exactly one in the corpus, as in the paper)."""
    dim = 64
    batch = 64
    num_tables = 6
    b = GraphBuilder(f"dlrm_{variant}")
    dense_in = b.parameter((batch, 13), name="dense_features")
    bottom = mlp(b, dense_in, [64, dim], final_activation="relu")
    embs = [
        embedding_lookup(b, batch, vocab=1000 * (i + 1), dim=dim, name=f"table{i}")
        for i in range(num_tables)
    ]
    feats = [bottom] + embs
    # Pairwise dot-product interactions.
    stacked = b.concatenate([b.reshape(f, (batch, 1, dim)) for f in feats], dim=1)
    inter = b.dot(stacked, b.transpose(stacked, (0, 2, 1)))
    n = len(feats)
    flat = b.reshape(inter, (batch, n * n))
    top_in = b.concatenate([bottom, flat], dim=1)
    out = mlp(b, top_in, [128, 64, 1], final_activation="sigmoid")
    return Program(b.graph.name, b.build([out]), family="dlrm")


def ranking(variant: int = 0) -> Program:
    """Ranking-like scorer (manual-split test family): wide embeddings +
    deep tower + listwise softmax over candidates."""
    dim = 64 + 32 * (variant % 2)
    batch, candidates = 16, 16
    b = GraphBuilder(f"ranking_{variant}")
    query = b.parameter((batch, dim), name="query_features")
    cand = b.parameter((batch, candidates, dim), name="candidate_features")
    qtower = mlp(b, query, [dim * 2, dim], final_activation="relu")
    c2 = b.reshape(cand, (batch * candidates, dim))
    ctower = mlp(b, c2, [dim * 2, dim], final_activation="relu")
    ctower = b.reshape(ctower, (batch, candidates, dim))
    q3 = b.reshape(qtower, (batch, dim, 1))
    scores = b.reshape(b.dot(ctower, q3), (batch, candidates))
    probs = b.softmax(scores)
    return Program(b.graph.name, b.build([probs]), family="ranking")
