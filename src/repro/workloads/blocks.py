"""Reusable graph-construction blocks shared by the workload generators.

Every helper takes a :class:`~repro.hlo.GraphBuilder` plus instruction ids
and returns instruction ids, so model-family generators compose them freely.
Shapes follow NHWC for images and [batch, time, features] for sequences.
"""
from __future__ import annotations

from ..hlo.builder import GraphBuilder
from ..hlo.shapes import DType


def conv_block(
    b: GraphBuilder,
    x: int,
    filters: int,
    kernel: int = 3,
    strides: tuple[int, int] = (1, 1),
    activation: bool = True,
) -> int:
    """Convolution + folded batch-norm (scale/shift) + optional ReLU."""
    cin = b.shape_of(x).dims[-1]
    w = b.constant((kernel, kernel, cin, filters), name="conv_w")
    y = b.conv2d(x, w, strides=strides, padding="same")
    y = b.scale_shift(y)
    if activation:
        y = b.relu(y)
    return y


def residual_block_v1(b: GraphBuilder, x: int, filters: int, strides=(1, 1)) -> int:
    """ResNet v1 bottleneck: conv-bn-relu x2 + projection shortcut + relu."""
    shortcut = x
    y = conv_block(b, x, filters, kernel=3, strides=strides)
    y = conv_block(b, y, filters, kernel=3, activation=False)
    if b.shape_of(shortcut).dims != b.shape_of(y).dims:
        shortcut = conv_block(b, shortcut, filters, kernel=1, strides=strides, activation=False)
    out = b.add(y, shortcut)
    return b.relu(out)


def residual_block_v2(b: GraphBuilder, x: int, filters: int, strides=(1, 1)) -> int:
    """ResNet v2 pre-activation variant: bn-relu-conv x2 + shortcut."""
    pre = b.relu(b.scale_shift(x))
    y = conv_block(b, pre, filters, kernel=3, strides=strides, activation=True)
    cin = b.shape_of(y).dims[-1]
    w = b.constant((3, 3, cin, filters), name="conv_w")
    y = b.conv2d(y, w, padding="same")
    shortcut = x
    if b.shape_of(shortcut).dims != b.shape_of(y).dims:
        shortcut = conv_block(b, pre, filters, kernel=1, strides=strides, activation=False)
    return b.add(y, shortcut)


def inception_module(b: GraphBuilder, x: int, filters: int) -> int:
    """Four parallel towers (1x1 / 3x3 / 5x5 / pool-1x1) concatenated."""
    f = max(filters // 4, 8)
    t1 = conv_block(b, x, f, kernel=1)
    t3 = conv_block(b, conv_block(b, x, f, kernel=1), f, kernel=3)
    t5 = conv_block(b, conv_block(b, x, f, kernel=1), f, kernel=5)
    pooled = b.reduce_window(
        x, window=(1, 3, 3, 1), strides=(1, 1, 1, 1), kind="max", padding="same"
    )
    tp = conv_block(b, pooled, f, kernel=1)
    return b.concatenate([t1, t3, t5, tp], dim=3)


def max_pool(b: GraphBuilder, x: int, window: int = 2, stride: int = 2) -> int:
    """Spatial max pooling for NHWC tensors."""
    return b.reduce_window(
        x,
        window=(1, window, window, 1),
        strides=(1, stride, stride, 1),
        kind="max",
        padding="valid",
    )


def global_average_pool(b: GraphBuilder, x: int) -> int:
    """Mean over spatial dims of an NHWC tensor: [n,h,w,c] -> [n,c]."""
    return b.reduce(x, [1, 2], kind="mean")


def mlp(b: GraphBuilder, x: int, widths: list[int], final_activation: str | None = None) -> int:
    """Stack of dense layers; all-but-last use ReLU."""
    for w in widths[:-1]:
        x = b.dense(x, w, activation="relu")
    return b.dense(x, widths[-1], activation=final_activation)


def lstm_cell(b: GraphBuilder, x: int, h: int, c: int, hidden: int) -> tuple[int, int]:
    """One LSTM step expanded into primitives; returns (h_next, c_next)."""
    xh = b.concatenate([x, h], dim=1)
    gates = b.dense(xh, 4 * hidden, activation=None)
    n = b.shape_of(gates).dims[0]
    i = b.logistic(b.slice(gates, (0, 0), (n, hidden)))
    f = b.logistic(b.slice(gates, (0, hidden), (n, 2 * hidden)))
    g = b.tanh(b.slice(gates, (0, 2 * hidden), (n, 3 * hidden)))
    o = b.logistic(b.slice(gates, (0, 3 * hidden), (n, 4 * hidden)))
    c_next = b.add(b.multiply(f, c), b.multiply(i, g))
    h_next = b.multiply(o, b.tanh(c_next))
    return h_next, c_next


def unrolled_lstm(
    b: GraphBuilder, xs: list[int], hidden: int, batch: int
) -> list[int]:
    """Unrolled LSTM over a list of per-step inputs; returns hidden states."""
    h = b.constant((batch, hidden), name="h0")
    c = b.constant((batch, hidden), name="c0")
    outs = []
    for x in xs:
        h, c = lstm_cell(b, x, h, c, hidden)
        outs.append(h)
    return outs


def embedding_lookup(b: GraphBuilder, batch: int, vocab: int, dim: int, name: str = "emb") -> int:
    """Token-id embedding lookup: ids [batch] -> vectors [batch, dim]."""
    table = b.constant((vocab, dim), name=f"{name}_table")
    ids = b.parameter((batch,), dtype=DType.S32, name=f"{name}_ids")
    return b.gather(table, ids)


def sequence_embedding(
    b: GraphBuilder, batch: int, seq: int, vocab: int, dim: int, name: str = "emb"
) -> int:
    """Sequence embedding lookup: ids [batch, seq] -> [batch, seq, dim]."""
    table = b.constant((vocab, dim), name=f"{name}_table")
    ids = b.parameter((batch, seq), dtype=DType.S32, name=f"{name}_ids")
    return b.gather(table, ids)


def self_attention(b: GraphBuilder, x: int, dim: int) -> int:
    """Single-head self-attention over [batch, seq, dim] inputs."""
    batch, seq, in_dim = b.shape_of(x).dims
    wq = b.constant((in_dim, dim), name="wq")
    wk = b.constant((in_dim, dim), name="wk")
    wv = b.constant((in_dim, dim), name="wv")
    q = b.dot(x, wq)
    k = b.dot(x, wk)
    v = b.dot(x, wv)
    kt = b.transpose(k, (0, 2, 1))
    scores = b.dot(q, kt)
    scale = b.constant((), name="inv_sqrt_d")
    scores = b.multiply(scores, b.broadcast_scalar(scale, (batch, seq, seq)))
    attn = b.softmax(scores, dim=-1)
    return b.dot(attn, v)


def transformer_layer(b: GraphBuilder, x: int, dim: int, ff_dim: int) -> int:
    """Pre-norm transformer encoder layer built from primitives."""
    attn = self_attention(b, b.layer_norm(x), dim)
    wo = b.constant((dim, b.shape_of(x).dims[-1]), name="wo")
    x = b.add(x, b.dot(attn, wo))
    h = b.layer_norm(x)
    batch, seq, d = b.shape_of(h).dims
    h2 = b.reshape(h, (batch * seq, d))
    h2 = mlp(b, h2, [ff_dim, d])
    h2 = b.reshape(h2, (batch, seq, d))
    return b.add(x, h2)
