"""Feature extraction for kernels (paper Sec. 3.1).

A model input is a kernel represented as *node features* (per instruction:
opcode id plus scalar descriptors of shape, layout, striding, padding,
filter size...), *kernel features* (tile size and the optional static
performance features), and an *adjacency matrix*.

Variable-length features (shape dims, layout, tile dims) are encoded as
fixed-size sub-vectors, padded or truncated, followed by their sum and
product — the product is the tensor volume and remains informative when the
sub-vector was truncated (paper: "including the product is critical").

Magnitudes span many orders (elements, bytes, FLOPs), so those entries are
log1p-compressed before the dataset-level min-max scaling to [0, 1] that
the paper applies using training-set statistics.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..compiler.analysis import StaticAnalysis, analyze
from ..compiler.kernels import Kernel
from ..compiler.tiling import TileConfig
from ..hlo.graph import Graph
from ..hlo.instruction import Instruction
from ..hlo.opcodes import Opcode

#: Fixed sub-vector length for per-dimension features.
MAX_DIMS = 6

#: Width of the scalar node-feature vector (excluding the opcode id).
NODE_FEATURE_DIM = 2 * (MAX_DIMS + 2) + 12

#: Width of the tile-size kernel-feature block.
TILE_FEATURE_DIM = MAX_DIMS + 2

#: Number of optional static performance features.
STATIC_FEATURE_DIM = 4


def encode_varlen(values: tuple[int, ...] | list[int], length: int = MAX_DIMS) -> list[float]:
    """Fixed-size encoding of a variable-length integer list.

    Pads with zeros / truncates to ``length`` entries and appends the sum
    and the product of *all* original values.
    """
    vals = [float(v) for v in values]
    head = vals[:length] + [0.0] * max(0, length - len(vals))
    total = sum(vals)
    prod = float(math.prod(vals)) if vals else 0.0
    return head + [total, prod]


def _write_varlen(
    row: np.ndarray, at: int, values, length: int = MAX_DIMS, compress: bool = False
) -> None:
    """Write :func:`encode_varlen` of ``values`` into ``row[at:at+length+2]``,
    optionally log1p-compressing the trailing sum/product slots (done for
    the output-dims block, whose volume spans many orders of magnitude)."""
    vals = [float(v) for v in values]
    k = min(len(vals), length)
    if k:
        row[at : at + k] = vals[:k]
    total = sum(vals)
    prod = float(math.prod(vals)) if vals else 0.0
    row[at + length] = math.log1p(total) if compress else total
    row[at + length + 1] = math.log1p(prod) if compress else prod


def _write_node_features(row: np.ndarray, inst: Instruction) -> None:
    """Fill one preallocated row with the instruction's scalar features."""
    s = inst.shape
    _write_varlen(row, 0, s.dims, compress=True)
    _write_varlen(row, MAX_DIMS + 2, s.layout.minor_to_major)
    window = inst.attr("window", ())
    strides = inst.attr("strides", ())
    base = 2 * (MAX_DIMS + 2)
    row[base] = math.log1p(s.byte_size)
    row[base + 1] = float(s.dtype.byte_size)
    row[base + 2] = 1.0 if inst.is_root else 0.0
    row[base + 3] = 1.0 if inst.opcode is Opcode.PARAMETER else 0.0
    row[base + 4] = float(inst.arity)
    row[base + 5] = float(window[0]) if len(window) > 0 else 0.0
    row[base + 6] = float(window[1]) if len(window) > 1 else 0.0
    row[base + 7] = float(strides[0]) if len(strides) > 0 else 0.0
    row[base + 8] = float(strides[1]) if len(strides) > 1 else 0.0
    row[base + 9] = 1.0 if inst.attr("padding") == "same" else 0.0
    row[base + 10] = float(len(inst.attr("dims", ())))  # reduce dimensions
    row[base + 11] = math.log1p(float(inst.attr("flops", 0.0)))


def node_feature_matrix(instructions: list[Instruction]) -> np.ndarray:
    """Scalar node features of a whole kernel as one matrix.

    Builds a single preallocated ``[n, NODE_FEATURE_DIM]`` float32 array
    and writes each instruction's features into its row — no per-node
    Python lists, per-node array allocations, or ``np.stack``. Row values
    are bitwise-identical to :func:`node_features` on each instruction.
    """
    out = np.zeros((len(instructions), NODE_FEATURE_DIM), dtype=np.float32)
    for i, inst in enumerate(instructions):
        _write_node_features(out[i], inst)
    return out


def node_features(inst: Instruction) -> np.ndarray:
    """Scalar feature vector for one instruction.

    Contents: output dims (padded, +sum, +product), layout minor-to-major
    (padded, +sum, +product), log bytes, dtype width, output flag, parameter
    flag, arity, convolution window/striding/padding, reduction arity,
    contraction FLOPs, transcendental flag and per-element cost.
    """
    return node_feature_matrix([inst])[0]


def tile_features(tile: TileConfig) -> np.ndarray:
    """Kernel-feature block for one tile size (padded dims + sum + product)."""
    feats = encode_varlen(tile.dims)
    feats[MAX_DIMS] = math.log1p(feats[MAX_DIMS])
    feats[MAX_DIMS + 1] = math.log1p(feats[MAX_DIMS + 1])
    return np.asarray(feats, dtype=np.float32)


def static_features(analysis: StaticAnalysis) -> np.ndarray:
    """The four optional static performance features, log-compressed."""
    return np.asarray(
        [math.log1p(v) for v in analysis.as_tuple()], dtype=np.float32
    )


@dataclass
class KernelFeatures:
    """Extracted features of one kernel (tile-independent parts).

    Attributes:
        opcodes: [n] integer opcode per node (topological order).
        node_feats: [n, NODE_FEATURE_DIM] scalar node features.
        adjacency: [n, n] dense 0/1 adjacency (i feeds j), topological order.
        static_feats: [STATIC_FEATURE_DIM] static performance features.
    """

    opcodes: np.ndarray
    node_feats: np.ndarray
    adjacency: np.ndarray
    static_feats: np.ndarray

    @property
    def num_nodes(self) -> int:
        return len(self.opcodes)


def extract_kernel_features(kernel: Kernel) -> KernelFeatures:
    """Compute all tile-independent features of one kernel."""
    order = kernel.graph.topological_order()
    opcodes = np.asarray([int(inst.opcode) for inst in order], dtype=np.int64)
    feats = node_feature_matrix(order)
    adjacency = kernel.graph.adjacency_matrix(order)
    static = static_features(analyze(kernel.graph))
    return KernelFeatures(opcodes, feats, adjacency, static)


class FeatureScaler:
    """Min-max scaler to [0, 1] fit on training data (paper footnote 1).

    Integer-derived features are cast to reals and independently scaled
    using the minimum and maximum observed in the training set; test-time
    values are clipped into the training range.
    """

    def __init__(self) -> None:
        self.lo: np.ndarray | None = None
        self.hi: np.ndarray | None = None

    def fit(self, rows: np.ndarray) -> "FeatureScaler":
        """Record per-column min/max from [n, d] training rows."""
        rows = np.asarray(rows, dtype=np.float32)
        if rows.ndim != 2:
            raise ValueError(f"expected 2-D rows, got shape {rows.shape}")
        self.lo = rows.min(axis=0)
        self.hi = rows.max(axis=0)
        return self

    def transform(self, rows: np.ndarray) -> np.ndarray:
        """Scale rows into [0, 1]; constant columns map to 0.

        Raises:
            RuntimeError: if the scaler was never fit.
        """
        if self.lo is None or self.hi is None:
            raise RuntimeError("FeatureScaler.transform called before fit")
        rows = np.asarray(rows, dtype=np.float32)
        span = self.hi - self.lo
        span = np.where(span > 0, span, 1.0)
        return np.clip((rows - self.lo) / span, 0.0, 1.0)

    def fit_transform(self, rows: np.ndarray) -> np.ndarray:
        return self.fit(rows).transform(rows)

    def state(self) -> dict[str, np.ndarray]:
        """Serializable snapshot (for saving trained models)."""
        if self.lo is None or self.hi is None:
            raise RuntimeError("FeatureScaler.state called before fit")
        return {"lo": self.lo, "hi": self.hi}

    @staticmethod
    def from_state(state: dict[str, np.ndarray]) -> "FeatureScaler":
        sc = FeatureScaler()
        sc.lo = np.asarray(state["lo"], dtype=np.float32)
        sc.hi = np.asarray(state["hi"], dtype=np.float32)
        return sc
