"""Batch assembly and balanced sampling.

A :class:`GraphBatch` stacks several kernels into one model input: node
features are concatenated into a single matrix, adjacencies become one
block-diagonal sparse operator, and per-kernel features/targets are aligned
by graph index. Tile features and static performance features are kept as
separate blocks — *where* they enter the network (node level vs. kernel
embedding, present vs. absent) is a model configuration, not a dataset
property (paper Fig. 3 options 1/2 and the Table 3 ablations).

Sequence reductions (LSTM/Transformer) additionally need a padded
[batch, max_nodes] view, which the batch precomputes.

Sampling is *balanced by model family* — the paper draws examples evenly
from each model type during training to counter the corpus imbalance.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..nn.graph_layers import BatchedGraphContext
from .dataset import FusionRecord, TileRecord
from .features import (
    FeatureScaler,
    KernelFeatures,
    STATIC_FEATURE_DIM,
    TILE_FEATURE_DIM,
)

#: One raw batch item: (features, tile_vector_or_None, target_seconds, group_id).
BatchItem = tuple[KernelFeatures, "np.ndarray | None", float, int]


@dataclass
class GraphBatch:
    """One training/evaluation batch of kernels.

    Attributes:
        context: sparse structural operators (GNN aggregation, edge list).
        opcodes: [total_nodes] opcode ids.
        node_feats: [total_nodes, F] scaled node features.
        tile_feats: [batch, TILE_FEATURE_DIM] scaled tile features (all
            zeros when items carried no tile, e.g. the fusion task).
        static_feats: [batch, STATIC_FEATURE_DIM] scaled static features.
        targets: [batch] true runtimes in seconds.
        group_ids: [batch] ranking-group id (kernel identity) for the
            pairwise rank loss.
        pad_index: [batch, max_nodes] indices into the node axis for padded
            sequence views (entries beyond a graph's size point at node 0).
        pad_mask: [batch, max_nodes] validity mask for ``pad_index``.
    """

    context: BatchedGraphContext
    opcodes: np.ndarray
    node_feats: np.ndarray
    tile_feats: np.ndarray
    static_feats: np.ndarray
    targets: np.ndarray
    group_ids: np.ndarray
    pad_index: np.ndarray
    pad_mask: np.ndarray

    @property
    def size(self) -> int:
        return len(self.targets)


@dataclass
class Scalers:
    """Train-set feature scalers for the three feature blocks."""

    node: FeatureScaler
    tile: FeatureScaler
    static: FeatureScaler

    @staticmethod
    def fit_tile(records: list[TileRecord]) -> "Scalers":
        """Fit all scalers from tile-task training records."""
        node_rows = np.concatenate([r.features.node_feats for r in records], axis=0)
        tile_rows = np.concatenate([r.tile_feats for r in records], axis=0)
        static_rows = np.stack([r.features.static_feats for r in records])
        return Scalers(
            node=FeatureScaler().fit(node_rows),
            tile=FeatureScaler().fit(tile_rows),
            static=FeatureScaler().fit(static_rows),
        )

    @staticmethod
    def fit_fusion(records: list[FusionRecord]) -> "Scalers":
        """Fit scalers from fusion-task training records (tile block gets a
        degenerate unit scaler; the fusion task has no tile features)."""
        node_rows = np.concatenate([r.features.node_feats for r in records], axis=0)
        static_rows = np.stack([r.features.static_feats for r in records])
        tile_sc = FeatureScaler().fit(np.zeros((2, TILE_FEATURE_DIM), dtype=np.float32))
        return Scalers(
            node=FeatureScaler().fit(node_rows),
            tile=tile_sc,
            static=FeatureScaler().fit(static_rows),
        )


def assemble_batch(
    items: list[BatchItem],
    scalers: Scalers | None = None,
    neighbor_cap: int | None = 20,
) -> GraphBatch:
    """Build a :class:`GraphBatch` from raw items.

    Args:
        items: (features, tile_vector, target_runtime, group_id) per kernel
            instance; ``tile_vector`` may be None (fusion task).
        scalers: fitted scalers; None = identity.
        neighbor_cap: GNN neighbor-list truncation (paper App. B: 20).
    """
    if not items:
        raise ValueError("cannot assemble an empty batch")
    adjacencies = [sp.csr_matrix(f.adjacency) for f, _, _, _ in items]
    context = BatchedGraphContext(adjacencies, neighbor_cap=neighbor_cap)
    opcodes = np.concatenate([f.opcodes for f, _, _, _ in items])
    node_feats = np.concatenate([f.node_feats for f, _, _, _ in items], axis=0)
    tile_rows = np.stack(
        [
            t if t is not None else np.zeros(TILE_FEATURE_DIM, dtype=np.float32)
            for _, t, _, _ in items
        ]
    )
    static_rows = np.stack([f.static_feats for f, _, _, _ in items])
    if scalers is not None:
        node_feats = scalers.node.transform(node_feats)
        tile_rows = scalers.tile.transform(tile_rows)
        static_rows = scalers.static.transform(static_rows)
    targets = np.asarray([t for _, _, t, _ in items], dtype=np.float64)
    group_ids = np.asarray([g for _, _, _, g in items], dtype=np.int64)

    sizes = context.sizes
    max_nodes = max(sizes)
    pad_index = np.zeros((len(items), max_nodes), dtype=np.int64)
    pad_mask = np.zeros((len(items), max_nodes), dtype=bool)
    offset = 0
    for row, n in enumerate(sizes):
        pad_index[row, :n] = np.arange(offset, offset + n)
        pad_mask[row, :n] = True
        offset += n
    return GraphBatch(
        context=context,
        opcodes=opcodes,
        node_feats=node_feats.astype(np.float32),
        tile_feats=tile_rows.astype(np.float32),
        static_feats=static_rows.astype(np.float32),
        targets=targets,
        group_ids=group_ids,
        pad_index=pad_index,
        pad_mask=pad_mask,
    )


def _family_buckets(families: list[str]) -> dict[str, list[int]]:
    buckets: dict[str, list[int]] = {}
    for i, fam in enumerate(families):
        buckets.setdefault(fam, []).append(i)
    return buckets


class TileBatchSampler:
    """Family-balanced sampler of (kernel, tile-group) batches.

    Each draw picks ``kernels_per_batch`` kernels (families sampled
    uniformly, then a kernel within the family) and ``tiles_per_kernel``
    tile samples per kernel. All tiles of one kernel share a group id so
    the rank loss only compares within kernels.
    """

    def __init__(
        self,
        records: list[TileRecord],
        kernels_per_batch: int = 8,
        tiles_per_kernel: int = 4,
        seed: int = 0,
    ) -> None:
        if not records:
            raise ValueError("no tile records to sample from")
        self.records = records
        self.kernels_per_batch = kernels_per_batch
        self.tiles_per_kernel = tiles_per_kernel
        self.rng = np.random.default_rng(seed)
        self.buckets = _family_buckets([r.family for r in records])
        self.family_names = sorted(self.buckets)

    def draw_items(self) -> list[BatchItem]:
        """Raw batch items for :func:`assemble_batch`."""
        items: list[BatchItem] = []
        for group in range(self.kernels_per_batch):
            fam = self.family_names[self.rng.integers(0, len(self.family_names))]
            rec = self.records[
                self.buckets[fam][self.rng.integers(0, len(self.buckets[fam]))]
            ]
            count = min(self.tiles_per_kernel, rec.num_samples)
            pick = self.rng.choice(rec.num_samples, size=count, replace=False)
            for t in pick:
                items.append(
                    (rec.features, rec.tile_feats[t], float(rec.runtimes[t]), group)
                )
        return items


class FusionBatchSampler:
    """Family-balanced sampler over fusion records (one kernel per item)."""

    def __init__(
        self,
        records: list[FusionRecord],
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if not records:
            raise ValueError("no fusion records to sample from")
        self.records = records
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.buckets = _family_buckets([r.family for r in records])
        self.family_names = sorted(self.buckets)

    def draw_items(self) -> list[BatchItem]:
        """Raw batch items for :func:`assemble_batch`."""
        items: list[BatchItem] = []
        for i in range(self.batch_size):
            fam = self.family_names[self.rng.integers(0, len(self.family_names))]
            rec = self.records[
                self.buckets[fam][self.rng.integers(0, len(self.buckets[fam]))]
            ]
            items.append((rec.features, None, rec.runtime, i))
        return items
