"""Batch assembly and balanced sampling.

A :class:`GraphBatch` stacks several kernels into one model input: node
features are concatenated into a single matrix, adjacencies become one
block-diagonal sparse operator, and per-kernel features/targets are aligned
by graph index. Tile features and static performance features are kept as
separate blocks — *where* they enter the network (node level vs. kernel
embedding, present vs. absent) is a model configuration, not a dataset
property (paper Fig. 3 options 1/2 and the Table 3 ablations).

Sequence reductions (LSTM/Transformer) additionally need a padded
[batch, max_nodes] view, which the batch precomputes.

Sampling is *balanced by model family* — the paper draws examples evenly
from each model type during training to counter the corpus imbalance.
"""
from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..nn.graph_layers import BatchedGraphContext, GraphOperators
from .dataset import FusionRecord, TileRecord
from .features import (
    FeatureScaler,
    KernelFeatures,
    STATIC_FEATURE_DIM,
    TILE_FEATURE_DIM,
)

#: One raw batch item: (features, tile_vector_or_None, target_seconds, group_id).
BatchItem = tuple[KernelFeatures, "np.ndarray | None", float, int]


@dataclass
class GraphBatch:
    """One training/evaluation batch of kernels.

    Attributes:
        context: sparse structural operators (GNN aggregation, edge list).
        opcodes: [total_nodes] opcode ids.
        node_feats: [total_nodes, F] scaled node features.
        tile_feats: [batch, TILE_FEATURE_DIM] scaled tile features (all
            zeros when items carried no tile, e.g. the fusion task).
        static_feats: [batch, STATIC_FEATURE_DIM] scaled static features.
        targets: [batch] true runtimes in seconds.
        group_ids: [batch] ranking-group id (kernel identity) for the
            pairwise rank loss.
        pad_index: [batch, max_nodes] indices into the node axis for padded
            sequence views (entries beyond a graph's size point at node 0).
        pad_mask: [batch, max_nodes] validity mask for ``pad_index``.
    """

    context: BatchedGraphContext
    opcodes: np.ndarray
    node_feats: np.ndarray
    tile_feats: np.ndarray
    static_feats: np.ndarray
    targets: np.ndarray
    group_ids: np.ndarray
    pad_index: np.ndarray
    pad_mask: np.ndarray

    @property
    def size(self) -> int:
        return len(self.targets)


@dataclass
class Scalers:
    """Train-set feature scalers for the three feature blocks."""

    node: FeatureScaler
    tile: FeatureScaler
    static: FeatureScaler

    @staticmethod
    def fit_tile(records: list[TileRecord]) -> "Scalers":
        """Fit all scalers from tile-task training records."""
        node_rows = np.concatenate([r.features.node_feats for r in records], axis=0)
        tile_rows = np.concatenate([r.tile_feats for r in records], axis=0)
        static_rows = np.stack([r.features.static_feats for r in records])
        return Scalers(
            node=FeatureScaler().fit(node_rows),
            tile=FeatureScaler().fit(tile_rows),
            static=FeatureScaler().fit(static_rows),
        )

    @staticmethod
    def fit_fusion(records: list[FusionRecord]) -> "Scalers":
        """Fit scalers from fusion-task training records (tile block gets a
        degenerate unit scaler; the fusion task has no tile features)."""
        node_rows = np.concatenate([r.features.node_feats for r in records], axis=0)
        static_rows = np.stack([r.features.static_feats for r in records])
        tile_sc = FeatureScaler().fit(np.zeros((2, TILE_FEATURE_DIM), dtype=np.float32))
        return Scalers(
            node=FeatureScaler().fit(node_rows),
            tile=tile_sc,
            static=FeatureScaler().fit(static_rows),
        )


def assemble_batch(
    items: list[BatchItem],
    scalers: Scalers | None = None,
    neighbor_cap: int | None = 20,
) -> GraphBatch:
    """Build a :class:`GraphBatch` from raw items.

    Args:
        items: (features, tile_vector, target_runtime, group_id) per kernel
            instance; ``tile_vector`` may be None (fusion task).
        scalers: fitted scalers; None = identity.
        neighbor_cap: GNN neighbor-list truncation (paper App. B: 20).
    """
    if not items:
        raise ValueError("cannot assemble an empty batch")
    adjacencies = [sp.csr_matrix(f.adjacency) for f, _, _, _ in items]
    context = BatchedGraphContext(adjacencies, neighbor_cap=neighbor_cap)
    opcodes = np.concatenate([f.opcodes for f, _, _, _ in items])
    node_feats = np.concatenate([f.node_feats for f, _, _, _ in items], axis=0)
    tile_rows = np.stack(
        [
            t if t is not None else np.zeros(TILE_FEATURE_DIM, dtype=np.float32)
            for _, t, _, _ in items
        ]
    )
    static_rows = np.stack([f.static_feats for f, _, _, _ in items])
    if scalers is not None:
        node_feats = scalers.node.transform(node_feats)
        tile_rows = scalers.tile.transform(tile_rows)
        static_rows = scalers.static.transform(static_rows)
    targets = np.asarray([t for _, _, t, _ in items], dtype=np.float64)
    group_ids = np.asarray([g for _, _, _, g in items], dtype=np.int64)

    pad_index, pad_mask = _pad_views(context.sizes)
    return GraphBatch(
        context=context,
        opcodes=opcodes,
        node_feats=node_feats.astype(np.float32),
        tile_feats=tile_rows.astype(np.float32),
        static_feats=static_rows.astype(np.float32),
        targets=targets,
        group_ids=group_ids,
        pad_index=pad_index,
        pad_mask=pad_mask,
    )


def _pad_views(sizes: list[int]) -> tuple[np.ndarray, np.ndarray]:
    """Padded [batch, max_nodes] index/mask views over the node axis."""
    max_nodes = max(sizes)
    pad_index = np.zeros((len(sizes), max_nodes), dtype=np.int64)
    pad_mask = np.zeros((len(sizes), max_nodes), dtype=bool)
    offset = 0
    for row, n in enumerate(sizes):
        pad_index[row, :n] = np.arange(offset, offset + n)
        pad_mask[row, :n] = True
        offset += n
    return pad_index, pad_mask


class KernelCacheEntry:
    """Per-kernel precomputed batch ingredients.

    Holds everything about one kernel that does not depend on the batch it
    lands in: scaled node features, opcode ids, the scaled static-feature
    row, and the three pre-normalized single-graph adjacency operators.
    The strong reference to ``features`` pins the object (and therefore its
    ``id()``, which keys the cache) for the lifetime of the entry.
    """

    __slots__ = ("features", "opcodes", "node_feats", "static_feats", "operators")

    def __init__(
        self,
        features: KernelFeatures,
        scalers: Scalers | None,
        neighbor_cap: int | None,
    ) -> None:
        self.features = features
        self.opcodes = features.opcodes
        node_feats = features.node_feats
        static_row = features.static_feats[None, :]
        if scalers is not None:
            node_feats = scalers.node.transform(node_feats)
            static_row = scalers.static.transform(static_row)
        self.node_feats = node_feats.astype(np.float32)
        self.static_feats = np.asarray(static_row[0], dtype=np.float32)
        self.operators = GraphOperators(
            sp.csr_matrix(features.adjacency), neighbor_cap=neighbor_cap
        )


class KernelCache:
    """Per-kernel precompute cache and zero-copy batch composer.

    Scaling and adjacency normalization are row-local, so per-kernel
    results compose exactly into batch-level results:
    :meth:`assemble` returns a batch bitwise-identical to
    :func:`assemble_batch` on the same items, but re-does only the
    per-batch work (tile scaling, targets, index arithmetic) — the
    expensive per-kernel work (feature scaling, three adjacency
    normalizations) is computed once per unique kernel and reused.

    Cache invariants — an entry is valid only for the exact configuration
    the cache was constructed with. Invalidate (i.e. build a fresh cache)
    whenever:

    * the ``scalers`` are refit or replaced (entries store *scaled* rows);
    * ``neighbor_cap`` changes (normalized operators bake the truncation);
    * a cached :class:`~repro.data.features.KernelFeatures` object is
      mutated in place (entries alias its arrays and key on its ``id``).

    Composed :class:`~repro.nn.graph_layers.BatchedGraphContext` objects
    are additionally memoized per kernel-composition tuple (LRU, bounded
    by ``max_contexts``), so repeated batches over the same kernels — the
    autotuner scoring one kernel under many tiles, epoch plans bucketing
    identical draws — skip even the index arithmetic.

    Entries pin real memory (scaled features + three CSR operators per
    kernel): pass ``max_entries`` to bound the entry store with LRU
    eviction when the kernel population is open-ended (e.g. an evaluator
    fed ever-new fused kernels), or leave it ``None`` when it is finite
    (a training dataset). Evicted kernels are simply recomputed on next
    sight.

    Attributes:
        hits / misses / evictions: per-kernel entry cache counters.
        context_hits / context_misses / context_evictions: composed-context
            memo counters.
    """

    def __init__(
        self,
        scalers: Scalers | None = None,
        neighbor_cap: int | None = 20,
        max_contexts: int = 64,
        max_entries: int | None = None,
    ) -> None:
        self.scalers = scalers
        self.neighbor_cap = neighbor_cap
        self.max_contexts = max_contexts
        self.max_entries = max_entries
        self._entries: OrderedDict[int, KernelCacheEntry] = OrderedDict()
        # Memo values carry their entry tuple so a hit can be validated by
        # identity — entry eviction means an id() can be reused by a new
        # entry, and an id-keyed hit alone could then serve a stale context.
        self._contexts: OrderedDict[
            tuple[int, ...],
            tuple[
                tuple[KernelCacheEntry, ...],
                BatchedGraphContext,
                np.ndarray,
                np.ndarray,
            ],
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.context_hits = 0
        self.context_misses = 0
        self.context_evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Counter snapshot (entry + composed-context caches)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "contexts": len(self._contexts),
            "context_hits": self.context_hits,
            "context_misses": self.context_misses,
            "context_evictions": self.context_evictions,
        }

    def clear(self) -> None:
        """Drop all cached entries and composed contexts (counters kept)."""
        self._entries.clear()
        self._contexts.clear()

    def entry(self, features: KernelFeatures) -> KernelCacheEntry:
        """The cached entry for one kernel, computing it on first sight."""
        key = id(features)
        cached = self._entries.get(key)
        if cached is not None and cached.features is features:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        entry = KernelCacheEntry(features, self.scalers, self.neighbor_cap)
        self._entries[key] = entry
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def _context(
        self, entries: list[KernelCacheEntry]
    ) -> tuple[BatchedGraphContext, np.ndarray, np.ndarray]:
        key = tuple(id(e) for e in entries)
        cached = self._contexts.get(key)
        if cached is not None and all(
            a is b for a, b in zip(cached[0], entries)
        ):
            self.context_hits += 1
            self._contexts.move_to_end(key)
            return cached[1], cached[2], cached[3]
        self.context_misses += 1
        context = BatchedGraphContext.compose([e.operators for e in entries])
        pad_index, pad_mask = _pad_views(context.sizes)
        self._contexts[key] = (tuple(entries), context, pad_index, pad_mask)
        while len(self._contexts) > self.max_contexts:
            self._contexts.popitem(last=False)
            self.context_evictions += 1
        return context, pad_index, pad_mask

    def assemble(self, items: list[BatchItem]) -> GraphBatch:
        """Compose a batch; bitwise-equal to ``assemble_batch`` on ``items``."""
        if not items:
            raise ValueError("cannot assemble an empty batch")
        entries = [self.entry(f) for f, _, _, _ in items]
        context, pad_index, pad_mask = self._context(entries)
        opcodes = np.concatenate([e.opcodes for e in entries])
        node_feats = np.concatenate([e.node_feats for e in entries], axis=0)
        tile_rows = np.stack(
            [
                t if t is not None else np.zeros(TILE_FEATURE_DIM, dtype=np.float32)
                for _, t, _, _ in items
            ]
        )
        if self.scalers is not None:
            tile_rows = self.scalers.tile.transform(tile_rows)
        static_rows = np.stack([e.static_feats for e in entries])
        targets = np.asarray([t for _, _, t, _ in items], dtype=np.float64)
        group_ids = np.asarray([g for _, _, _, g in items], dtype=np.int64)
        return GraphBatch(
            context=context,
            opcodes=opcodes,
            node_feats=node_feats,
            tile_feats=tile_rows.astype(np.float32),
            static_feats=static_rows,
            targets=targets,
            group_ids=group_ids,
            pad_index=pad_index,
            pad_mask=pad_mask,
        )


def _family_buckets(families: list[str]) -> dict[str, list[int]]:
    buckets: dict[str, list[int]] = {}
    for i, fam in enumerate(families):
        buckets.setdefault(fam, []).append(i)
    return buckets


class TileBatchSampler:
    """Family-balanced sampler of (kernel, tile-group) batches.

    Each draw picks ``kernels_per_batch`` kernels (families sampled
    uniformly, then a kernel within the family) and ``tiles_per_kernel``
    tile samples per kernel. All tiles of one kernel share a group id so
    the rank loss only compares within kernels.
    """

    def __init__(
        self,
        records: list[TileRecord],
        kernels_per_batch: int = 8,
        tiles_per_kernel: int = 4,
        seed: int = 0,
    ) -> None:
        if not records:
            raise ValueError("no tile records to sample from")
        self.records = records
        self.kernels_per_batch = kernels_per_batch
        self.tiles_per_kernel = tiles_per_kernel
        self.rng = np.random.default_rng(seed)
        self.buckets = _family_buckets([r.family for r in records])
        self.family_names = sorted(self.buckets)

    def draw_items(self) -> list[BatchItem]:
        """Raw batch items for :func:`assemble_batch`."""
        items: list[BatchItem] = []
        for group in range(self.kernels_per_batch):
            fam = self.family_names[self.rng.integers(0, len(self.family_names))]
            rec = self.records[
                self.buckets[fam][self.rng.integers(0, len(self.buckets[fam]))]
            ]
            count = min(self.tiles_per_kernel, rec.num_samples)
            pick = self.rng.choice(rec.num_samples, size=count, replace=False)
            for t in pick:
                items.append(
                    (rec.features, rec.tile_feats[t], float(rec.runtimes[t]), group)
                )
        return items


class FusionBatchSampler:
    """Family-balanced sampler over fusion records (one kernel per item)."""

    def __init__(
        self,
        records: list[FusionRecord],
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if not records:
            raise ValueError("no fusion records to sample from")
        self.records = records
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.buckets = _family_buckets([r.family for r in records])
        self.family_names = sorted(self.buckets)

    def draw_items(self) -> list[BatchItem]:
        """Raw batch items for :func:`assemble_batch`."""
        items: list[BatchItem] = []
        for i in range(self.batch_size):
            fam = self.family_names[self.rng.integers(0, len(self.family_names))]
            rec = self.records[
                self.buckets[fam][self.rng.integers(0, len(self.buckets[fam]))]
            ]
            items.append((rec.features, None, rec.runtime, i))
        return items
