"""Dataset generation: the tile-size and fusion datasets (paper Sec. 4).

Tile-size dataset: each program is compiled with the default fusion
heuristic; every kernel is expanded into (kernel, tile) samples over its
valid tile sizes, measured on the (simulated) TPU as the minimum of three
noisy runs.

Fusion dataset: each program is expanded under many random fusion
configurations; the resulting kernels are deduplicated by content
fingerprint and measured at their default tile size.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compiler.fusion import FusionConfig, FusionParams, fuse_program, fusible_edges
from ..compiler.kernels import Kernel
from ..compiler.tiling import (
    TileConfig,
    TilingParams,
    default_tile,
    enumerate_tile_sizes,
)
from ..hlo.graph import Program
from ..tpu.simulator import TpuSimulator
from .features import KernelFeatures, extract_kernel_features, tile_features


@dataclass
class TileRecord:
    """All tile-size samples of one kernel.

    Attributes:
        kernel: the kernel itself (kept for baseline evaluation).
        features: tile-independent extracted features.
        tiles: the sampled tile configurations.
        tile_feats: [t, TILE_FEATURE_DIM] features per tile.
        runtimes: [t] measured runtimes (seconds).
        program / family: provenance for per-application metrics and
            balanced sampling.
    """

    kernel: Kernel
    features: KernelFeatures
    tiles: list[TileConfig]
    tile_feats: np.ndarray
    runtimes: np.ndarray
    program: str
    family: str

    @property
    def num_samples(self) -> int:
        return len(self.runtimes)


@dataclass
class FusionRecord:
    """One deduplicated kernel sample of the fusion dataset."""

    kernel: Kernel
    features: KernelFeatures
    runtime: float
    program: str
    family: str


@dataclass
class TileSizeDataset:
    """Tile-size dataset over a list of programs."""

    records: list[TileRecord] = field(default_factory=list)

    @property
    def num_kernels(self) -> int:
        return len(self.records)

    @property
    def num_samples(self) -> int:
        return sum(r.num_samples for r in self.records)

    def by_program(self) -> dict[str, list[TileRecord]]:
        out: dict[str, list[TileRecord]] = {}
        for r in self.records:
            out.setdefault(r.program, []).append(r)
        return out


@dataclass
class FusionDataset:
    """Fusion dataset over a list of programs."""

    records: list[FusionRecord] = field(default_factory=list)

    @property
    def num_samples(self) -> int:
        return len(self.records)

    def by_program(self) -> dict[str, list[FusionRecord]]:
        out: dict[str, list[FusionRecord]] = {}
        for r in self.records:
            out.setdefault(r.program, []).append(r)
        return out


def build_tile_dataset(
    programs: list[Program],
    simulator: TpuSimulator | None = None,
    max_kernels_per_program: int = 24,
    max_tiles_per_kernel: int = 32,
    tiling: TilingParams | None = None,
    seed: int = 0,
    measure_noise: float = 0.02,
) -> TileSizeDataset:
    """Generate the tile-size dataset.

    Kernels are taken from the default-fusion decomposition; per kernel, at
    most ``max_tiles_per_kernel`` tile sizes are kept (the paper likewise
    measured "as many as possible ... within 30 minutes" rather than all).
    Kernels with fewer than two tile options carry no ranking signal and are
    skipped.
    """
    sim = simulator or TpuSimulator()
    rng = np.random.default_rng(seed)
    tiling = tiling or TilingParams()
    ds = TileSizeDataset()
    for program in programs:
        kernels = fuse_program(program.graph, program_name=program.name)
        kernels = [k for k in kernels if k.has_tile_options()]
        if len(kernels) > max_kernels_per_program:
            idx = np.linspace(0, len(kernels) - 1, max_kernels_per_program)
            kernels = [kernels[int(i)] for i in idx.round()]
        for kernel in kernels:
            tiles = enumerate_tile_sizes(kernel, tiling)
            if len(tiles) < 2:
                continue
            if len(tiles) > max_tiles_per_kernel:
                pick = rng.choice(len(tiles), size=max_tiles_per_kernel, replace=False)
                pick.sort()
                tiles = [tiles[i] for i in pick]
            runtimes = np.asarray(
                [
                    sim.measure(kernel, t, rng=rng, noise_sigma=measure_noise)
                    for t in tiles
                ],
                dtype=np.float64,
            )
            ds.records.append(
                TileRecord(
                    kernel=kernel,
                    features=extract_kernel_features(kernel),
                    tiles=tiles,
                    tile_feats=np.stack([tile_features(t) for t in tiles]),
                    runtimes=runtimes,
                    program=program.name,
                    family=program.family,
                )
            )
    return ds


def build_fusion_dataset(
    programs: list[Program],
    simulator: TpuSimulator | None = None,
    configs_per_program: int = 8,
    max_kernels_per_config: int = 32,
    fusion_params: FusionParams | None = None,
    seed: int = 0,
    measure_noise: float = 0.02,
) -> FusionDataset:
    """Generate the fusion dataset with random-search fusion configurations.

    For every program, the default configuration plus ``configs_per_program``
    random configurations are expanded into kernels; kernels are globally
    deduplicated by fingerprint (the paper reports 208M samples "after
    duplicate elimination") and measured at their default tile size.
    """
    sim = simulator or TpuSimulator()
    rng = np.random.default_rng(seed)
    params = fusion_params or FusionParams()
    ds = FusionDataset()
    seen: set[str] = set()
    for program in programs:
        num_edges = len(fusible_edges(program.graph))
        configs: list[FusionConfig | None] = [None]  # None = default heuristic
        for _ in range(configs_per_program):
            configs.append(
                FusionConfig.random(num_edges, rng, p=float(rng.uniform(0.2, 0.9)))
            )
        for config in configs:
            kernels = fuse_program(
                program.graph, config=config, params=params, program_name=program.name
            )
            if len(kernels) > max_kernels_per_config:
                idx = np.linspace(0, len(kernels) - 1, max_kernels_per_config)
                kernels = [kernels[int(i)] for i in idx.round()]
            for kernel in kernels:
                fp = kernel.fingerprint()
                if fp in seen:
                    continue
                seen.add(fp)
                runtime = sim.measure(
                    kernel, default_tile(kernel), rng=rng, noise_sigma=measure_noise
                )
                ds.records.append(
                    FusionRecord(
                        kernel=kernel,
                        features=extract_kernel_features(kernel),
                        runtime=float(runtime),
                        program=program.name,
                        family=program.family,
                    )
                )
    return ds
