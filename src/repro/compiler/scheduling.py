"""Critical-path list scheduling over kernel bodies.

The TPU backend distributes operations across functional units (MXU, vector
unit, transcendental unit, permute/memory unit) under VLIW issue constraints
and data dependencies; the achieved schedule length — not the raw op count —
determines compute time (paper Appendix A). This module implements a
resource-constrained list scheduler used by the ground-truth simulator, and
a plain critical-path (infinite-resource) bound used by the analytical
model's compute estimate.
"""
from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush

from ..hlo.graph import Graph
from ..hlo.instruction import Instruction
from ..hlo.opcodes import OpCategory, Opcode, opcode_info


#: Functional units an instruction can issue to.
UNITS = ("mxu", "vpu", "trans", "perm")


def functional_unit(inst: Instruction) -> str:
    """The functional unit an instruction executes on."""
    info = opcode_info(inst.opcode)
    if info.category is OpCategory.CONTRACTION:
        return "mxu"
    if info.transcendental:
        return "trans"
    if info.category in (OpCategory.DATA_MOVEMENT, OpCategory.SCATTER_GATHER):
        return "perm"
    return "vpu"


def instruction_cycles(inst: Instruction, elements_per_cycle: float = 128.0) -> float:
    """Issue cycles one instruction occupies on its unit (per full tensor).

    Vector ops process ``elements_per_cycle`` lanes per cycle; MXU ops are
    charged by their FLOP count against a 128x128 systolic array; leaf nodes
    are free (they are materialized by the memory system, priced separately).
    """
    if inst.opcode in (Opcode.PARAMETER, Opcode.CONSTANT):
        return 0.0
    info = opcode_info(inst.opcode)
    n = inst.shape.num_elements
    if info.category is OpCategory.CONTRACTION:
        flops = float(inst.attr("flops", 2.0 * n))
        return flops / (2.0 * 128.0 * 128.0)
    if info.category is OpCategory.DATA_MOVEMENT:
        return n / (2.0 * elements_per_cycle)
    weight = max(info.flops_per_element, 1.0)
    return weight * n / elements_per_cycle


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one kernel body.

    Attributes:
        length_cycles: makespan of the resource-constrained schedule.
        critical_path_cycles: dependence-only lower bound.
        unit_busy_cycles: total busy cycles per functional unit.
        issue_stall_cycles: extra cycles the schedule spends beyond the
            max(critical path, busiest unit) lower bound — a proxy for
            issue stalls caused by op-mix imbalance.
    """

    length_cycles: float
    critical_path_cycles: float
    unit_busy_cycles: dict[str, float]
    issue_stall_cycles: float


def critical_path(graph: Graph, scale: float = 1.0) -> float:
    """Dependence-constrained lower bound on schedule length (cycles)."""
    longest: dict[int, float] = {}
    for inst in graph.topological_order():
        cost = instruction_cycles(inst) * scale
        start = max((longest[o] for o in inst.operands), default=0.0)
        longest[inst.id] = start + cost
    return max(longest.values(), default=0.0)


def list_schedule(graph: Graph, scale: float = 1.0) -> ScheduleResult:
    """Greedy critical-path-priority list scheduling with unit contention.

    Each functional unit executes one instruction at a time; ready
    instructions are prioritized by their remaining critical path. ``scale``
    multiplies every instruction's cycle estimate (used to schedule a single
    tile iteration rather than the whole tensor).
    """
    order = graph.topological_order()
    cycles = {inst.id: instruction_cycles(inst) * scale for inst in order}

    # Remaining critical path (to any sink) for priorities.
    users = graph.users()
    remaining: dict[int, float] = {}
    for inst in reversed(order):
        tail = max((remaining[u] for u in users[inst.id]), default=0.0)
        remaining[inst.id] = cycles[inst.id] + tail

    indegree = {inst.id: len(inst.operands) for inst in order}
    ready_time = {inst.id: 0.0 for inst in order}
    heap: list[tuple[float, int]] = []
    for inst in order:
        if indegree[inst.id] == 0:
            heappush(heap, (-remaining[inst.id], inst.id))

    unit_free = {u: 0.0 for u in UNITS}
    unit_busy = {u: 0.0 for u in UNITS}
    finish: dict[int, float] = {}
    makespan = 0.0
    while heap:
        _, nid = heappop(heap)
        inst = graph.get(nid)
        unit = functional_unit(inst)
        start = max(ready_time[nid], unit_free[unit])
        end = start + cycles[nid]
        finish[nid] = end
        unit_free[unit] = end
        unit_busy[unit] += cycles[nid]
        makespan = max(makespan, end)
        for u in users[nid]:
            indegree[u] -= 1
            ready_time[u] = max(ready_time[u], end)
            if indegree[u] == 0:
                heappush(heap, (-remaining[u], u))

    cp = max(remaining.values(), default=0.0)
    lower = max(cp, max(unit_busy.values(), default=0.0))
    return ScheduleResult(
        length_cycles=makespan,
        critical_path_cycles=cp,
        unit_busy_cycles=unit_busy,
        issue_stall_cycles=max(0.0, makespan - lower),
    )


def live_tensor_peak(graph: Graph) -> int:
    """Peak number of simultaneously-live tensors under topological order.

    A cheap stand-in for register/scratchpad pressure: walking the schedule
    in topological order, a value becomes live when produced and dies after
    its last user. The peak live count drives the simulator's spill model.
    """
    order = graph.topological_order()
    users = graph.users()
    last_use: dict[int, int] = {}
    for pos, inst in enumerate(order):
        for op in inst.operands:
            last_use[op] = pos
    live = 0
    peak = 0
    dead_at: dict[int, list[int]] = {}
    for pos, inst in enumerate(order):
        if inst.opcode not in (Opcode.PARAMETER, Opcode.CONSTANT):
            live += 1
        peak = max(peak, live)
        for op, last in list(last_use.items()):
            if last == pos:
                if graph.get(op).opcode not in (Opcode.PARAMETER, Opcode.CONSTANT):
                    live -= 1
                del last_use[op]
    return peak
