"""Tile-size enumeration for kernels.

A kernel computes its (primary) output one *tile* at a time: an output tile
is a per-dimension block size; the kernel loops over ceil(dim/tile) blocks
per dimension, streaming input slices into scratchpad and the output tile
back to HBM (paper Sec. 2.2). ``enumerate_tile_sizes`` queries the valid
tile sizes of a kernel exactly like the paper "queried the compiler for a
list of valid tile sizes" — validity is a scratchpad-footprint constraint.

Real kernels expose between 2 and 500,000 valid tile sizes; enumeration is
therefore capped with deterministic coverage-preserving subsampling.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product

import numpy as np

from ..hlo.shapes import Shape
from .kernels import Kernel


@dataclass(frozen=True)
class TileConfig:
    """One tile-size choice for a kernel.

    Attributes:
        dims: block size per output dimension (same rank as the kernel's
            primary output). Every entry is in ``[1, dim]``.
    """

    dims: tuple[int, ...]

    @property
    def volume(self) -> int:
        """Elements per tile."""
        return int(math.prod(self.dims)) if self.dims else 1

    def iterations(self, output: Shape) -> int:
        """Number of tile iterations needed to cover ``output``."""
        it = 1
        for d, t in zip(output.dims, self.dims):
            it *= -(-d // t)
        return int(it) if output.dims else 1


@dataclass(frozen=True)
class TilingParams:
    """Knobs for tile enumeration.

    Attributes:
        scratchpad_bytes: on-chip memory capacity.
        scratchpad_fraction: fraction of scratchpad one tile's working set
            may occupy (double-buffering for compute/transfer overlap means
            a tile must fit in roughly half the scratchpad).
        max_candidates_per_dim: cap on distinct block sizes tried per dim.
        max_configs: hard cap on the returned configuration count.
    """

    scratchpad_bytes: int = 16 * 1024 * 1024
    scratchpad_fraction: float = 0.5
    max_candidates_per_dim: int = 12
    max_configs: int = 512


def candidate_block_sizes(dim: int, cap: int) -> list[int]:
    """Block-size candidates for one dimension of extent ``dim``.

    Powers of two up to ``dim``, multiples of 128 (lane width), plus ``dim``
    itself — then deterministically thinned to ``cap`` entries.
    """
    if dim <= 1:
        return [max(dim, 1)]
    sizes = {dim}
    p = 1
    while p < dim:
        sizes.add(p)
        p *= 2
    m = 128
    while m < dim:
        sizes.add(m)
        m += 128
    ordered = sorted(sizes)
    if len(ordered) <= cap:
        return ordered
    # Thin evenly but always keep the extremes.
    idx = np.linspace(0, len(ordered) - 1, cap).round().astype(int)
    return sorted({ordered[i] for i in idx})


def tile_footprint_bytes(kernel: Kernel, tile: TileConfig) -> int:
    """Scratchpad bytes one iteration of ``tile`` keeps live.

    The output tile is resident, plus — for each kernel input — the slice of
    it needed for one output tile. Inputs whose dimensions align with output
    dimensions contribute proportionally-shrunk slices; mismatched inputs
    (e.g. full contraction operands) contribute a tile-by-full-depth slice.
    """
    output = kernel.primary_output().shape
    tile_elems = tile.volume
    total = tile_elems * output.dtype.byte_size
    shrink = tile_elems / max(output.num_elements, 1)
    for param in kernel.graph.parameters():
        s = param.shape
        if s.dims == output.dims:
            # Elementwise-aligned input: slice shrinks with the tile.
            total += int(s.byte_size * shrink) or s.dtype.byte_size
        elif s.rank >= 2 and output.rank >= 2 and s.dims[-1] == output.dims[-1]:
            # Shares the minor dimension (e.g. weights [k, n] for out [m, n]):
            # the slice shrinks with the minor tile extent only.
            frac = tile.dims[-1] / max(output.dims[-1], 1)
            total += int(s.byte_size * frac) or s.dtype.byte_size
        else:
            # Contraction-style operand: one full stripe per tile row.
            lead = tile.dims[0] / max(output.dims[0], 1) if output.dims else 1.0
            total += int(s.byte_size * min(1.0, lead * 4)) or s.dtype.byte_size
    return total


def tile_transfer_bytes(kernel: Kernel, tile: TileConfig) -> tuple[int, int]:
    """Per-iteration (copy-in, copy-out) HBM traffic for one tile.

    Copy-out is the output tile itself; copy-in is the per-tile input slice
    estimate of :func:`tile_footprint_bytes`. Note the *total* copy-in over
    all iterations may exceed the input tensor sizes — contraction operands
    are re-streamed once per output stripe, which is exactly why tile choice
    changes total data movement (Appendix A, point 1).
    """
    output = kernel.primary_output().shape
    out_bytes = tile.volume * output.dtype.byte_size
    in_bytes = tile_footprint_bytes(kernel, tile) - out_bytes
    return max(in_bytes, 0), out_bytes


def enumerate_tile_sizes(
    kernel: Kernel,
    params: TilingParams | None = None,
) -> list[TileConfig]:
    """All valid tile sizes of a kernel (capped, deterministic).

    Returns at least one configuration (the full-output tile is clamped into
    validity by halving its largest dimension until it fits). Kernels
    without tile options (data formatting) get the single trivial config.
    """
    params = params or TilingParams()
    output = kernel.primary_output().shape
    if not kernel.has_tile_options() or output.rank == 0:
        return [TileConfig(tuple(output.dims))]
    budget = int(params.scratchpad_bytes * params.scratchpad_fraction)

    per_dim = [
        candidate_block_sizes(d, params.max_candidates_per_dim) for d in output.dims
    ]
    configs: list[TileConfig] = []
    total = math.prod(len(c) for c in per_dim)
    if total <= params.max_configs * 4:
        combos = product(*per_dim)
    else:
        # Deterministic subsample of the cross product via a seeded generator.
        rng = np.random.default_rng(abs(hash(kernel.fingerprint())) % (2**32))
        combos = (
            tuple(c[rng.integers(0, len(c))] for c in per_dim)
            for _ in range(params.max_configs * 4)
        )
    seen: set[tuple[int, ...]] = set()
    for dims in combos:
        dims = tuple(dims)
        if dims in seen:
            continue
        seen.add(dims)
        tile = TileConfig(dims)
        if tile_footprint_bytes(kernel, tile) <= budget:
            configs.append(tile)
        if len(configs) >= params.max_configs:
            break
    if not configs:
        configs.append(_clamped_full_tile(kernel, budget))
    return configs


def _clamped_full_tile(kernel: Kernel, budget: int) -> TileConfig:
    """Whole-output tile, halved along its largest dim until it fits."""
    dims = list(kernel.primary_output().shape.dims)
    tile = TileConfig(tuple(dims))
    while tile_footprint_bytes(kernel, tile) > budget and max(dims) > 1:
        i = int(np.argmax(dims))
        dims[i] = max(1, dims[i] // 2)
        tile = TileConfig(tuple(dims))
    return tile


def default_tile(kernel: Kernel, params: TilingParams | None = None) -> TileConfig:
    """A reasonable default tile: the largest valid one by volume.

    This stands in for the compiler's pre-model default; the analytical or
    learned model then picks among :func:`enumerate_tile_sizes`.
    """
    options = enumerate_tile_sizes(kernel, params)
    return max(options, key=lambda t: (t.volume, t.dims))
