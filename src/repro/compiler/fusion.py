"""Operator fusion: the configuration space and the default heuristic pass.

A *fusion configuration* assigns a boolean to every fusible producer->consumer
edge of a program graph; fused edges induce groups (connected components)
that become kernels. This is the space the paper's fusion autotuner searches
(up to 2^40000 configurations per program). The compiler's *default* fusion
is a greedy priority heuristic that fuses when doing so saves memory traffic,
mirroring XLA's description in Sec. 2.3.

Program runtime is additive over kernels (one kernel executes at a time on a
TPU), so group convexity does not affect costing; the default heuristic
nevertheless produces convex groups by only fusing producers whose users all
land in the same consumer group.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hlo.graph import Graph
from ..hlo.opcodes import OpCategory, Opcode, opcode_info
from .kernels import Kernel, extract_kernels


@dataclass(frozen=True)
class FusionParams:
    """Legality and heuristic knobs for the fusion pass.

    Attributes:
        max_ops_per_kernel: cap on non-leaf ops in one kernel.
        max_contractions_per_kernel: MXU ops allowed per kernel (XLA fuses
            elementwise ops into a conv/dot kernel but never two MXU ops).
        scratchpad_bytes: scratchpad capacity; a group whose parameter +
            output footprint exceeds a fraction of it will not be fused
            further by the default heuristic.
        min_saved_bytes: default heuristic fuses an edge only if it saves at
            least this much HBM traffic.
    """

    max_ops_per_kernel: int = 64
    max_contractions_per_kernel: int = 1
    scratchpad_bytes: int = 16 * 1024 * 1024
    min_saved_bytes: int = 0


def fusible_edges(graph: Graph) -> list[tuple[int, int]]:
    """All producer->consumer edges eligible for fusion, in stable order.

    Edges out of PARAMETER nodes are not fusible (parameters are kernel
    inputs by definition). Everything else is a candidate; legality of the
    resulting *groups* is enforced when a configuration is applied.
    """
    edges: list[tuple[int, int]] = []
    users = graph.users()
    for inst in graph.topological_order():
        if not opcode_info(inst.opcode).fusible:
            continue
        for user in sorted(users[inst.id]):
            edges.append((inst.id, user))
    return edges


@dataclass(frozen=True)
class FusionConfig:
    """A point in the fusion search space.

    Attributes:
        decisions: one boolean per edge of :func:`fusible_edges` (same
            order); True means "fuse this edge".
    """

    decisions: tuple[bool, ...]

    @staticmethod
    def none(num_edges: int) -> "FusionConfig":
        """The fully-unfused configuration."""
        return FusionConfig((False,) * num_edges)

    @staticmethod
    def all(num_edges: int) -> "FusionConfig":
        """The maximally-fused configuration (before legalization)."""
        return FusionConfig((True,) * num_edges)

    @staticmethod
    def random(num_edges: int, rng: np.random.Generator, p: float = 0.5) -> "FusionConfig":
        """Independent Bernoulli(p) decision per edge."""
        return FusionConfig(tuple(bool(b) for b in rng.random(num_edges) < p))

    def flip(self, index: int) -> "FusionConfig":
        """Return a neighbour with one decision toggled (for local search)."""
        d = list(self.decisions)
        d[index] = not d[index]
        return FusionConfig(tuple(d))

    def mutate(self, rng: np.random.Generator, num_flips: int = 1) -> "FusionConfig":
        """Return a neighbour with ``num_flips`` random decisions toggled."""
        d = list(self.decisions)
        if not d:
            return self
        for idx in rng.integers(0, len(d), size=num_flips):
            d[idx] = not d[idx]
        return FusionConfig(tuple(d))


class _UnionFind:
    """Union-find over instruction ids with legality bookkeeping."""

    def __init__(self, graph: Graph, params: FusionParams) -> None:
        self.parent = {i: i for i in graph.instructions}
        self.size = {
            i: (0 if inst.opcode in (Opcode.PARAMETER, Opcode.CONSTANT) else 1)
            for i, inst in graph.instructions.items()
        }
        self.contractions = {
            i: (1 if opcode_info(inst.opcode).category is OpCategory.CONTRACTION else 0)
            for i, inst in graph.instructions.items()
        }
        self.params = params

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def can_union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        if self.size[ra] + self.size[rb] > self.params.max_ops_per_kernel:
            return False
        if (
            self.contractions[ra] + self.contractions[rb]
            > self.params.max_contractions_per_kernel
        ):
            return False
        return True

    def union(self, a: int, b: int) -> bool:
        if not self.can_union(a, b):
            return False
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.contractions[ra] += self.contractions[rb]
        return True

    def groups(self) -> list[set[int]]:
        by_root: dict[int, set[int]] = {}
        for i in self.parent:
            by_root.setdefault(self.find(i), set()).add(i)
        return [by_root[k] for k in sorted(by_root)]


def apply_fusion(
    graph: Graph,
    config: FusionConfig,
    params: FusionParams | None = None,
) -> list[set[int]]:
    """Realize a fusion configuration into legal groups.

    Chosen edges are processed in stable order; an edge whose union would
    break a legality constraint (kernel size cap, one-contraction cap) is
    silently dropped, making every configuration in the search space legal —
    the autotuner can therefore mutate freely.

    Returns:
        A partition of all instruction ids (leaf-only groups included; the
        kernel extractor skips those).
    """
    params = params or FusionParams()
    edges = fusible_edges(graph)
    if len(config.decisions) != len(edges):
        raise ValueError(
            f"config has {len(config.decisions)} decisions for {len(edges)} edges"
        )
    uf = _UnionFind(graph, params)
    for (producer, consumer), fuse in zip(edges, config.decisions):
        if fuse:
            uf.union(producer, consumer)
    # Attach leaf nodes (params/constants) to the group of one consumer so
    # kernels receive their inputs; a leaf feeding several groups stays where
    # the first (topological) consumer put it — extraction imports it into
    # other kernels as a fresh parameter automatically.
    users = graph.users()
    for inst in graph.topological_order():
        if inst.opcode is Opcode.CONSTANT:
            for user in sorted(users[inst.id]):
                uf.union(inst.id, user)
                break
    return uf.groups()


def default_fusion(
    graph: Graph,
    params: FusionParams | None = None,
) -> FusionConfig:
    """The compiler's greedy priority-based fusion heuristic.

    Walks producers in reverse topological order and fuses a producer into
    its consumers when (a) all the producer's users can land in the same
    group, (b) legality holds, and (c) the estimated HBM traffic saved (the
    producer's output no longer round-trips through HBM) beats
    ``min_saved_bytes``. This mirrors XLA's "will it save memory access
    time" estimate (Sec. 2.3).
    """
    params = params or FusionParams()
    edges = fusible_edges(graph)
    edge_index = {e: k for k, e in enumerate(edges)}
    decisions = [False] * len(edges)
    uf = _UnionFind(graph, params)
    users = graph.users()
    order = graph.topological_order()
    for inst in reversed(order):
        info = opcode_info(inst.opcode)
        if not info.fusible or inst.opcode is Opcode.CONSTANT:
            continue
        consumer_ids = users[inst.id]
        if not consumer_ids or inst.is_root:
            continue  # outputs must be materialized anyway
        # All users must already share one group for a traffic saving.
        roots = {uf.find(u) for u in consumer_ids}
        if len(roots) != 1:
            continue
        saved = inst.shape.byte_size
        if saved < params.min_saved_bytes:
            continue
        target = consumer_ids[0]
        if not uf.can_union(inst.id, target):
            continue
        # Scratchpad footprint guard: group inputs + outputs must fit.
        if _group_footprint(graph, uf, inst.id, target) > params.scratchpad_bytes:
            continue
        uf.union(inst.id, target)
        for u in consumer_ids:
            key = (inst.id, u)
            if key in edge_index:
                decisions[edge_index[key]] = True
    return FusionConfig(tuple(decisions))


def _group_footprint(graph: Graph, uf: _UnionFind, a: int, b: int) -> int:
    """Bytes the merged group of ``a`` and ``b`` would move across HBM.

    Counts the boundary tensors of the merged group: operands produced
    outside the group plus group outputs consumed outside (or program
    roots). This is the working set the tiling machinery must stream
    through scratchpad; one full tile of each boundary tensor being
    resident is the constraint the default heuristic guards.
    """
    ra, rb = uf.find(a), uf.find(b)
    members = {i for i in graph.instructions if uf.find(i) in (ra, rb)}
    users = graph.users()
    footprint = 0
    for i in members:
        inst = graph.get(i)
        for op in inst.operands:
            if op not in members:
                footprint += graph.get(op).shape.byte_size
        if inst.is_root or any(u not in members for u in users[i]):
            footprint += inst.shape.byte_size
    return footprint


def fuse_program(
    graph: Graph,
    config: FusionConfig | None = None,
    params: FusionParams | None = None,
    program_name: str = "",
) -> list[Kernel]:
    """Fuse and extract kernels in one step.

    Args:
        graph: whole-program graph.
        config: fusion configuration; defaults to :func:`default_fusion`.
        params: legality knobs.
        program_name: recorded on kernels.
    """
    params = params or FusionParams()
    if config is None:
        config = default_fusion(graph, params)
    groups = apply_fusion(graph, config, params)
    return extract_kernels(graph, groups, program_name=program_name or graph.name)
