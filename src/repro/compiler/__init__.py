"""Compiler substrate: fusion, kernel extraction, tiling, static analyses.

This package plays the role of XLA's high-level optimizer for our purposes:
it turns whole programs into kernels (fusion + extraction), enumerates each
kernel's valid tile sizes, and runs the static analyses whose outputs become
the optional performance features of the learned model.
"""
from .analysis import StaticAnalysis, analyze, instruction_flops, operational_intensity
from .fusion import (
    FusionConfig,
    FusionParams,
    apply_fusion,
    default_fusion,
    fuse_program,
    fusible_edges,
)
from .layouts import (
    best_output_layout,
    enumerate_output_layouts,
    with_output_layout,
)
from .kernels import KERNEL_KINDS, Kernel, classify_kernel, extract_kernels
from .scheduling import (
    ScheduleResult,
    critical_path,
    functional_unit,
    instruction_cycles,
    list_schedule,
    live_tensor_peak,
)
from .tiling import (
    TileConfig,
    TilingParams,
    candidate_block_sizes,
    default_tile,
    enumerate_tile_sizes,
    tile_footprint_bytes,
)

__all__ = [
    "KERNEL_KINDS",
    "FusionConfig",
    "FusionParams",
    "Kernel",
    "ScheduleResult",
    "StaticAnalysis",
    "TileConfig",
    "TilingParams",
    "analyze",
    "apply_fusion",
    "best_output_layout",
    "candidate_block_sizes",
    "classify_kernel",
    "critical_path",
    "default_fusion",
    "default_tile",
    "enumerate_output_layouts",
    "enumerate_tile_sizes",
    "extract_kernels",
    "functional_unit",
    "fuse_program",
    "fusible_edges",
    "instruction_cycles",
    "instruction_flops",
    "list_schedule",
    "live_tensor_peak",
    "operational_intensity",
    "tile_footprint_bytes",
    "with_output_layout",
]
