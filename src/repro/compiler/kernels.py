"""Kernels: the unit of execution, costing and learning.

After the fusion pass partitions a program graph into groups, each group is
extracted into a :class:`Kernel` — a small self-contained graph whose inputs
are PARAMETER nodes and whose outputs are marked ``is_root`` (paper Fig. 2).
The learned model, the analytical model and the simulator all consume
kernels.
"""
from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..hlo.graph import Graph
from ..hlo.opcodes import OpCategory, Opcode, opcode_info
from ..hlo.serialize import graph_from_dict, graph_to_dict


KERNEL_KINDS = ("fusion", "convolution", "data_formatting", "other")
"""Kernel type taxonomy, mirroring the paper's fusion-baseline scaling
(per-kernel-type coefficients) and the 'kernels without tile-size options'
carve-out (data formatting)."""


@dataclass
class Kernel:
    """One executable kernel.

    Attributes:
        graph: the kernel body; inputs are PARAMETER nodes, outputs are
            nodes with ``is_root=True``.
        kind: one of :data:`KERNEL_KINDS`.
        program_name: owning program (for bookkeeping / grouping).
        index: position of this kernel within its program's kernel sequence.
    """

    graph: Graph
    kind: str = "other"
    program_name: str = ""
    index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KERNEL_KINDS:
            raise ValueError(f"unknown kernel kind {self.kind!r}")
        self._fingerprint: str | None = None

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the kernel body."""
        return len(self.graph)

    def output_shapes(self):
        """Shapes of all kernel outputs."""
        return [inst.shape for inst in self.graph.roots()]

    def primary_output(self):
        """The largest output instruction — the one tiling is applied to."""
        roots = self.graph.roots()
        return max(roots, key=lambda i: (i.shape.num_elements, -i.id))

    def fingerprint(self) -> str:
        """Stable content hash of the kernel (opcodes, shapes, edges, attrs).

        Used for duplicate elimination in dataset generation and as the seed
        of the simulator's per-kernel hardware-quirk term. Computed once and
        cached (kernel graphs are immutable after extraction).
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            for inst in self.graph.topological_order():
                h.update(
                    f"{inst.opcode}|{inst.shape}|{inst.operands}|"
                    f"{sorted(inst.attrs.items())!r}|{inst.is_root}".encode()
                )
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form of the kernel (graph + metadata).

        The inverse, :meth:`from_dict`, rebuilds a kernel whose
        :meth:`fingerprint` is identical — this pair is what the serving
        layer's wire protocol ships across process and machine boundaries.
        """
        return {
            "graph": graph_to_dict(self.graph),
            "kind": self.kind,
            "program_name": self.program_name,
            "index": self.index,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Kernel":
        """Rebuild a kernel serialized by :meth:`to_dict`."""
        return cls(
            graph=graph_from_dict(data["graph"]),
            kind=data["kind"],
            program_name=data["program_name"],
            index=data["index"],
        )

    def has_tile_options(self) -> bool:
        """Whether this kernel supports tile-size selection.

        Mirrors the paper: data-formatting kernels have no tile-size options
        (about 1% of kernels) and are unsupported by the analytical model.
        """
        return self.kind != "data_formatting"


def classify_kernel(graph: Graph) -> str:
    """Assign a kernel kind from its body.

    A kernel containing a convolution is a convolution kernel; a kernel of
    only data-movement ops is data formatting; multi-op kernels are fusions;
    the rest are 'other'.
    """
    opcodes = [inst.opcode for inst in graph.instructions.values()]
    non_leaf = [
        op for op in opcodes if op not in (Opcode.PARAMETER, Opcode.CONSTANT)
    ]
    if any(op is Opcode.CONVOLUTION for op in non_leaf):
        return "convolution"
    if non_leaf and all(
        opcode_info(op).category is OpCategory.DATA_MOVEMENT for op in non_leaf
    ):
        return "data_formatting"
    if len(non_leaf) > 1:
        return "fusion"
    return "other"


def extract_kernels(
    graph: Graph,
    groups: Sequence[Iterable[int]],
    program_name: str = "",
) -> list[Kernel]:
    """Extract one kernel per fusion group, in topological group order.

    Args:
        graph: the whole-program graph.
        groups: a partition of (a subset of) instruction ids. Groups made
            solely of PARAMETER/CONSTANT nodes are skipped — they do not
            execute.
        program_name: recorded on every kernel.

    Returns:
        Kernels ordered by the earliest topological position of any member.
    """
    topo_pos = {inst.id: k for k, inst in enumerate(graph.topological_order())}
    material: list[tuple[int, set[int]]] = []
    for group in groups:
        ids = set(group)
        if not ids:
            continue
        executes = any(
            graph.get(i).opcode not in (Opcode.PARAMETER, Opcode.CONSTANT)
            for i in ids
        )
        if not executes:
            continue
        material.append((min(topo_pos[i] for i in ids), ids))
    material.sort(key=lambda t: t[0])
    kernels = []
    for index, (_, ids) in enumerate(material):
        sub = graph.subgraph(ids, name=f"{graph.name}.k{index}")
        kernels.append(
            Kernel(
                graph=sub,
                kind=classify_kernel(sub),
                program_name=program_name or graph.name,
                index=index,
            )
        )
    return kernels
