"""Layout assignment: choosing physical minor-to-major orders for tensors.

Layout assignment is one of the optimization axes the paper's autotuner
searches (Fig. 1: "data/model parallelism, layout assignment, operator
fusion, ..."). Physical layout matters to both cost models here: the
simulator's DMA and vector-lane alignment terms key off the *minor*
dimension of the kernel's output, so transposing the layout of a [8, 4096]
output from minor=4096 to minor=8 changes its measured runtime.

This module provides layout enumeration for a kernel's primary output and a
model-guided selection pass, mirroring tile-size selection's structure.
"""
from __future__ import annotations

from itertools import permutations

from ..hlo.graph import Graph
from ..hlo.instruction import Instruction
from ..hlo.shapes import Layout
from .kernels import Kernel


def enumerate_output_layouts(kernel: Kernel, cap: int = 6) -> list[Layout]:
    """Candidate physical layouts for the kernel's primary output.

    All permutations for rank <= 3; for higher ranks, rotations of the
    default minor-to-major order (full enumeration would be rank! and real
    compilers only consider a handful). The default layout is always first.

    Args:
        kernel: the kernel whose output is being laid out.
        cap: maximum number of candidates returned.
    """
    rank = kernel.primary_output().shape.rank
    if rank <= 1:
        return [Layout.default(rank)]
    default = Layout.default(rank)
    candidates = [default]
    if rank <= 3:
        for perm in permutations(range(rank)):
            layout = Layout(tuple(perm))
            if layout != default:
                candidates.append(layout)
    else:
        base = default.minor_to_major
        for shift in range(1, rank):
            rotated = base[shift:] + base[:shift]
            candidates.append(Layout(rotated))
    return candidates[:cap]


def with_output_layout(kernel: Kernel, layout: Layout) -> Kernel:
    """A copy of the kernel whose primary output uses ``layout``.

    Only the primary output's physical layout changes; logical dims and the
    rest of the graph are untouched (XLA inserts copies at kernel
    boundaries when layouts disagree — that copy cost is captured by the
    changed transfer-alignment behaviour of the relaid-out kernel itself in
    our model).
    """
    target = kernel.primary_output()
    layout.validate(target.shape.rank)
    g = Graph(kernel.graph.name)
    for inst in kernel.graph.topological_order():
        shape = inst.shape
        if inst.id == target.id:
            shape = shape.with_layout(layout)
        g.add(
            Instruction(
                id=inst.id,
                opcode=inst.opcode,
                shape=shape,
                operands=inst.operands,
                attrs=dict(inst.attrs),
                name=inst.name,
                is_root=inst.is_root,
            )
        )
    return Kernel(
        graph=g,
        kind=kernel.kind,
        program_name=kernel.program_name,
        index=kernel.index,
    )


def best_output_layout(kernel: Kernel, cost_fn, cap: int = 6) -> tuple[Layout, float]:
    """Pick the output layout minimizing ``cost_fn(kernel_variant)``.

    Args:
        kernel: kernel to lay out.
        cost_fn: maps a kernel variant to a scalar cost — typically
            ``lambda k: simulator.run(k, default_tile(k))`` or a learned
            evaluator's prediction.
        cap: layout candidates considered.

    Returns:
        (best layout, its cost).
    """
    best: tuple[Layout, float] | None = None
    for layout in enumerate_output_layouts(kernel, cap):
        variant = with_output_layout(kernel, layout)
        cost = float(cost_fn(variant))
        if best is None or cost < best[1]:
            best = (layout, cost)
    assert best is not None
    return best
