"""Static performance analyses over kernels.

These produce the four optional "static performance features" of the paper
(Sec. 3.1): floating point operations, bytes read, bytes written, and the
number of instructions executing on the special (transcendental) functional
unit. As in XLA, they are *estimates*: they are computed on the graph before
code generation and do not see the backend's actual instruction stream.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..hlo.graph import Graph
from ..hlo.instruction import Instruction
from ..hlo.opcodes import OpCategory, Opcode, opcode_info


@dataclass(frozen=True)
class StaticAnalysis:
    """The four whole-kernel static performance features.

    Attributes:
        flops: estimated floating point operations executed by the kernel.
        bytes_read: bytes loaded from HBM (kernel parameter tensors).
        bytes_written: bytes stored to HBM (kernel output tensors).
        transcendental_count: instructions issued to the special function
            unit, weighted by output element count.
    """

    flops: float
    bytes_read: float
    bytes_written: float
    transcendental_count: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Feature vector ordering used by the dataset pipeline."""
        return (self.flops, self.bytes_read, self.bytes_written, self.transcendental_count)


def instruction_flops(inst: Instruction) -> float:
    """Estimated floating point operations performed by one instruction."""
    info = opcode_info(inst.opcode)
    if info.category is OpCategory.CONTRACTION:
        return float(inst.attr("flops", 0.0))
    if inst.opcode is Opcode.REDUCE:
        # One combine op per input element (approximately).
        out = inst.shape.num_elements
        rdims = inst.attr("dims", ())
        factor = 1
        # Input elements = output elements * product of reduced extents; the
        # reduced extents are not recoverable from the output shape alone, so
        # record them when available via the producer in graph-level analysis.
        return float(out * factor)
    if inst.opcode is Opcode.REDUCE_WINDOW:
        window = inst.attr("window", ())
        per_out = 1
        for w in window:
            per_out *= w
        return float(inst.shape.num_elements * per_out)
    return float(inst.shape.num_elements * info.flops_per_element)


def _reduce_flops(graph: Graph, inst: Instruction) -> float:
    """REDUCE flops using the producer's shape (input element count)."""
    if not inst.operands:
        return 0.0
    producer = graph.get(inst.operands[0])
    return float(producer.shape.num_elements)


def analyze(graph: Graph) -> StaticAnalysis:
    """Run all four static analyses over a kernel graph.

    Bytes read are the sizes of PARAMETER tensors (data copied from HBM into
    scratchpad); bytes written are the sizes of root outputs (copied back).
    Constants are assumed resident (weights are streamed like parameters in
    real TPUs, but XLA's analysis treats them as reads too — we follow that
    and count constants of more than 1024 elements as reads).
    """
    flops = 0.0
    bytes_read = 0.0
    bytes_written = 0.0
    transcendental = 0.0
    for inst in graph.instructions.values():
        info = opcode_info(inst.opcode)
        if inst.opcode is Opcode.PARAMETER:
            bytes_read += inst.shape.byte_size
        elif inst.opcode is Opcode.CONSTANT and inst.shape.num_elements > 1024:
            bytes_read += inst.shape.byte_size
        if inst.is_root:
            bytes_written += inst.shape.byte_size
        if inst.opcode is Opcode.REDUCE:
            flops += _reduce_flops(graph, inst)
        else:
            flops += instruction_flops(inst)
        if info.transcendental:
            transcendental += inst.shape.num_elements
    return StaticAnalysis(flops, bytes_read, bytes_written, transcendental)


def operational_intensity(analysis: StaticAnalysis) -> float:
    """FLOPs per byte moved — the roofline x-axis for a kernel."""
    traffic = analysis.bytes_read + analysis.bytes_written
    if traffic <= 0:
        return 0.0
    return analysis.flops / traffic
